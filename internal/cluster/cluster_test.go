package cluster

import (
	"math/rand"
	"strings"
	"testing"

	"extsched/internal/autoscale"
	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/sim"
)

// TestJSQPickIsMinimal is the pure property behind the routing
// invariant: over random load vectors, JSQ always returns a member
// whose backlog equals the minimum — it never routes to a strictly
// longer queue — and ties break to the lowest index.
func TestJSQPickIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var p JSQ
	for trial := 0; trial < 2000; trial++ {
		loads := make([]Load, 1+rng.Intn(8))
		minB := int(^uint(0) >> 1)
		for i := range loads {
			loads[i] = Load{Backlog: rng.Intn(10), Work: rng.Float64() * 10, Speed: 1}
			if loads[i].Backlog < minB {
				minB = loads[i].Backlog
			}
		}
		pick := p.Pick(loads, core.ClassLow, rng.Float64())
		if loads[pick].Backlog != minB {
			t.Fatalf("trial %d: JSQ picked backlog %d, min is %d (loads %+v)",
				trial, loads[pick].Backlog, minB, loads)
		}
		for i := 0; i < pick; i++ {
			if loads[i].Backlog == minB {
				t.Fatalf("trial %d: JSQ picked %d but %d ties at %d", trial, pick, i, minB)
			}
		}
	}
}

// TestLeastWorkPickIsMinimal: same property for LWL over
// speed-normalized work.
func TestLeastWorkPickIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var p LeastWork
	for trial := 0; trial < 2000; trial++ {
		loads := make([]Load, 1+rng.Intn(8))
		for i := range loads {
			loads[i] = Load{Backlog: rng.Intn(10), Work: rng.Float64() * 10, Speed: 0.25 + rng.Float64()}
		}
		pick := p.Pick(loads, core.ClassLow, rng.Float64())
		for i, l := range loads {
			if normWork(l) < normWork(loads[pick]) {
				t.Fatalf("trial %d: LWL picked %d (%.3f) over %d (%.3f)",
					trial, pick, normWork(loads[pick]), i, normWork(l))
			}
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := &RoundRobin{}
	loads := make([]Load, 3)
	for i := 0; i < 9; i++ {
		if got := p.Pick(loads, core.ClassLow, 0); got != i%3 {
			t.Fatalf("pick %d = %d, want %d", i, got, i%3)
		}
	}
}

func TestAffinityPinsAndHandlesNegatives(t *testing.T) {
	var p Affinity
	loads := make([]Load, 3)
	for class := -5; class <= 5; class++ {
		got := p.Pick(loads, core.Class(class), 0)
		if got < 0 || got >= 3 {
			t.Fatalf("class %d picked out-of-range member %d", class, got)
		}
		want := ((class % 3) + 3) % 3
		if got != want {
			t.Fatalf("class %d -> member %d, want %d", class, got, want)
		}
	}
}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range []string{"", "rr", "jsq", "lwl", "affinity", "jsq-d", "lwl-d", "jsq-d:3", "lwl-d:8"} {
		if _, err := NewPolicy(name); err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	for _, name := range []string{"bogus", "jsq-d:0", "lwl-d:nope", "rr:2"} {
		if _, err := NewPolicy(name); err == nil {
			t.Errorf("NewPolicy accepted %q", name)
		}
	}
}

func TestSplitMPL(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(8)
		total := rng.Intn(40)
		parts := SplitMPL(total, n)
		if len(parts) != n {
			t.Fatalf("len = %d, want %d", len(parts), n)
		}
		sum, minP, maxP := 0, parts[0], parts[0]
		for _, m := range parts {
			sum += m
			if m < minP {
				minP = m
			}
			if m > maxP {
				maxP = m
			}
		}
		if total <= 0 {
			if sum != 0 {
				t.Fatalf("total %d: parts %v not all zero", total, parts)
			}
			continue
		}
		if minP < 1 {
			t.Fatalf("total %d over %d shards: a shard got %d (accidentally unlimited)", total, n, minP)
		}
		want := total
		if want < n {
			want = n
		}
		if sum != want {
			t.Fatalf("total %d over %d shards: parts %v sum to %d, want %d", total, n, parts, sum, want)
		}
		if maxP-minP > 1 {
			t.Fatalf("total %d over %d shards: uneven split %v", total, n, parts)
		}
	}
}

// testCluster builds n real shards (tiny DBMS each) on one engine.
func testCluster(t *testing.T, n int, policy Policy) (*sim.Engine, *Dispatcher) {
	t.Helper()
	eng := sim.NewEngine()
	shards := make([]Shard, n)
	for i := range shards {
		db, err := dbms.New(eng, dbms.Config{CPUs: 1, Disks: 1, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = Shard{FE: dbfe.New(eng, db, 2, nil), DB: db}
	}
	d, err := NewDispatcher(policy, shards)
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

// profile returns a minimal one-op transaction.
func profile(rng *rand.Rand, key uint64) dbms.TxnProfile {
	work := 0.001 + 0.01*rng.Float64()
	return dbms.TxnProfile{
		Ops:             []dbms.Op{{Key: key, CPUWork: work}},
		EstimatedDemand: work,
	}
}

// TestDispatcherRandomOpsInvariants drives a real 3-shard cluster with
// a randomized schedule of submissions, engine steps, MPL moves, speed
// changes and policy flips (seeded math/rand), checking after every
// step that:
//
//   - JSQ routes only to minimum-backlog shards (checked at each
//     submission while JSQ is active);
//   - arrivals are conserved: routed = completed + inside + queued,
//     per shard and in aggregate;
//   - the dispatcher's aggregate views equal the sum of shard views.
func TestDispatcherRandomOpsInvariants(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		runDispatcherProperty(t, seed)
	}
}

func runDispatcherProperty(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng, d := testCluster(t, 3, JSQ{})
	jsqActive := true
	completedPerShard := make([]uint64, 3)
	d.OnComplete = func(shard int, tx *dbfe.Txn) { completedPerShard[shard]++ }

	var key uint64
	check := func(op string) {
		shards := d.Shards()
		routed := d.Routed()
		var inside, queued int
		for i, sh := range shards {
			inside += sh.FE.Inside()
			queued += sh.FE.QueueLen()
			got := completedPerShard[i] + uint64(sh.FE.Inside()) + uint64(sh.FE.QueueLen())
			if got != routed[i] {
				t.Fatalf("seed %d after %s: shard %d conservation: completed %d + inside %d + queued %d != routed %d",
					seed, op, i, completedPerShard[i], sh.FE.Inside(), sh.FE.QueueLen(), routed[i])
			}
		}
		if d.Inside() != inside || d.QueueLen() != queued {
			t.Fatalf("seed %d after %s: aggregate views (%d,%d) != shard sums (%d,%d)",
				seed, op, d.Inside(), d.QueueLen(), inside, queued)
		}
	}

	for op := 0; op < 600; op++ {
		switch r := rng.Float64(); {
		case r < 0.55: // submit, verifying the routing invariant
			loads := d.Loads()
			before := d.Routed()
			key++
			d.Submit(profile(rng, key))
			after := d.Routed()
			picked := -1
			for i := range after {
				if after[i] != before[i] {
					picked = i
					break
				}
			}
			if picked < 0 {
				t.Fatalf("seed %d: submission routed nowhere", seed)
			}
			if jsqActive {
				minB := loads[0].Backlog
				for _, l := range loads {
					if l.Backlog < minB {
						minB = l.Backlog
					}
				}
				if loads[picked].Backlog != minB {
					t.Fatalf("seed %d: JSQ routed to shard %d with backlog %d, min %d",
						seed, picked, loads[picked].Backlog, minB)
				}
			}
			check("submit")
		case r < 0.85: // advance time
			eng.Run(eng.Now() + 0.02*rng.Float64())
			check("run")
		case r < 0.92:
			d.SetMPL(rng.Intn(9))
			check("setmpl")
		case r < 0.97:
			if err := d.SetSpeed(rng.Intn(3), 0.25+rng.Float64()); err != nil {
				t.Fatal(err)
			}
			check("setspeed")
		default:
			if rng.Intn(2) == 0 {
				d.SetPolicy(JSQ{})
				jsqActive = true
			} else {
				d.SetPolicy(&RoundRobin{})
				jsqActive = false
			}
			check("setpolicy")
		}
	}
	// Drain and verify total conservation.
	d.SetMPL(0)
	eng.Run(eng.Now() + 60)
	check("drain")
	if d.Inside() != 0 || d.QueueLen() != 0 {
		t.Fatalf("seed %d: cluster not drained: inside %d queued %d", seed, d.Inside(), d.QueueLen())
	}
	var total uint64
	for _, c := range completedPerShard {
		total += c
	}
	if total != key {
		t.Fatalf("seed %d: %d submitted, %d completed after drain", seed, key, total)
	}
	m := d.Metrics()
	if m.Completed != total {
		t.Fatalf("seed %d: aggregate metrics report %d completions, want %d", seed, m.Completed, total)
	}
}

func TestDispatcherValidation(t *testing.T) {
	if _, err := NewDispatcher(nil, nil); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := NewDispatcher(nil, []Shard{{}}); err == nil {
		t.Error("shard without frontend accepted")
	}
	_, d := testCluster(t, 2, nil)
	if err := d.SetSpeed(5, 1); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := d.SetSpeed(0, 0); err == nil {
		t.Error("zero speed accepted")
	}
	if d.PolicyName() != PolicyRoundRobin {
		t.Errorf("nil policy defaulted to %q, want rr", d.PolicyName())
	}
}

// TestMPLReportsRequestedValue: MPL() echoes the requested cluster-
// wide limit even when SplitMPL's one-slot-per-shard floor clamps the
// effective total — a controller probing below the shard count must
// observe its own actuation or it livelocks re-issuing the decrease.
func TestMPLReportsRequestedValue(t *testing.T) {
	_, d := testCluster(t, 3, nil) // shards built with MPL 2 each
	if got := d.MPL(); got != 6 {
		t.Fatalf("initial MPL = %d, want 6 (derived from shard gates)", got)
	}
	d.SetMPL(2) // below the shard count: effective 3, requested 2
	if got := d.MPL(); got != 2 {
		t.Errorf("MPL after SetMPL(2) = %d, want the requested 2", got)
	}
	for i, sh := range d.Shards() {
		if sh.FE.MPL() != 1 {
			t.Errorf("shard %d MPL = %d, want 1 (floor)", i, sh.FE.MPL())
		}
	}
	d.SetMPL(0)
	if got := d.MPL(); got != 0 {
		t.Errorf("MPL after SetMPL(0) = %d, want 0", got)
	}
}

// TestWorkSettledBeforeResubmit pins the least-work refund ordering:
// a closed-loop client resubmitting from its own completion callback
// must see the completing shard's outstanding work already settled,
// so LWL routes back to the shard that just freed capacity.
func TestWorkSettledBeforeResubmit(t *testing.T) {
	eng, d := testCluster(t, 2, LeastWork{})
	rng := rand.New(rand.NewSource(9))
	// Charge shard 1 with a queued txn so it stays busier throughout.
	d.Submit(dbms.TxnProfile{Ops: []dbms.Op{{Key: 1, CPUWork: 5}}, EstimatedDemand: 5})  // -> shard 0 (tie)
	d.Submit(dbms.TxnProfile{Ops: []dbms.Op{{Key: 2, CPUWork: 10}}, EstimatedDemand: 9}) // -> shard 1
	var sawWork float64 = -1
	p := profile(rng, 3) // small txn, routed to shard 0 (work 5+d vs 9)
	d.SubmitCB(dbms.TxnProfile{Ops: p.Ops, EstimatedDemand: 1}, func(tx *dbfe.Txn) {
		// At this instant the completed txn's charge must be refunded.
		sawWork = d.Loads()[0].Work
	})
	eng.Run(eng.Now() + 2) // small txn (<= ~0.011s service) completes first
	if sawWork < 0 {
		t.Fatal("completion callback never ran")
	}
	// Shard 0's work inside the callback is the remaining big txn's 5,
	// not 5+1: the completed charge was settled before the callback.
	if sawWork != 5 {
		t.Errorf("work seen in completion callback = %v, want 5 (refund must precede callback)", sawWork)
	}
}

// TestDispatcherChurnInvariants drives a real fleet through a
// randomized schedule of submissions, engine steps, crashes,
// recoveries, drains and shard additions with resubmit recovery armed
// (seeded math/rand), checking after every step that:
//
//   - no transaction is dispatched to a non-Up shard while an Up shard
//     exists (and the draining fallback / terminal failure ordering
//     holds when none does);
//   - arrivals are conserved per shard: routed = completed + inside +
//     queued + withdrawn-by-crash;
//   - logical transactions are conserved in aggregate: submitted =
//     finished + lost + inside + queued + awaiting-retry;
//   - no transaction ever exceeds its retry budget.
func TestDispatcherChurnInvariants(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		runChurnProperty(t, seed, "jsq")
	}
}

// TestDispatcherChurnInvariantsSampled re-runs the full churn property
// battery under the sampled policies: the eligibility check inside
// (never route to a non-Up shard while an Up one exists) is exactly the
// "jsq-d never routes to a down/draining shard" guarantee, and the
// conservation balances must survive sampling just as they do full
// scans.
func TestDispatcherChurnInvariantsSampled(t *testing.T) {
	for _, policy := range []string{"jsq-d:2", "lwl-d:3"} {
		for seed := int64(1); seed <= 3; seed++ {
			runChurnProperty(t, seed, policy)
		}
	}
}

func runChurnProperty(t *testing.T, seed int64, policyName string) {
	t.Helper()
	const budget = 2
	rng := rand.New(rand.NewSource(seed))
	pol, err := NewPolicySeeded(policyName, uint64(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng, d := testCluster(t, 3, pol)
	// An autoscale controller drives some of the lifecycle ops below,
	// exactly as the runner's tick does: recover-or-add on ScaleUp,
	// drain-highest on ScaleDown.
	asc, err := autoscale.New(autoscale.Config{
		Min: 1, Max: 6, Interval: 0.05,
		HighWater: 4, LowWater: 1,
		BreachWindows: 1, CalmWindows: 2, Cooldown: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetRecovery(eng, RecoveryPolicy{Resubmit: true, RetryBudget: budget, Seed: uint64(seed)}); err != nil {
		t.Fatal(err)
	}
	completed := make([]uint64, 3)
	d.OnComplete = func(shard int, tx *dbfe.Txn) {
		for shard >= len(completed) {
			completed = append(completed, 0)
		}
		completed[shard]++
	}
	var submitted, done, lost uint64
	cb := func(tx *dbfe.Txn) {
		if tx.Attempts > budget {
			t.Fatalf("seed %d: txn finished after %d attempts, budget %d", seed, tx.Attempts, budget)
		}
		if tx.Item.WasFailed() {
			lost++
		} else {
			done++
		}
	}
	check := func(op string) {
		routed := d.Routed()
		shards := d.Shards()
		var inside, queued uint64
		for i, sh := range shards {
			in, q := uint64(sh.FE.Inside()), uint64(sh.FE.QueueLen())
			inside += in
			queued += q
			var comp uint64
			if i < len(completed) {
				comp = completed[i]
			}
			if got := comp + in + q + sh.FE.Failed(); got != routed[i] {
				t.Fatalf("seed %d after %s: shard %d conservation: completed %d + inside %d + queued %d + withdrawn %d != routed %d",
					seed, op, i, comp, in, q, sh.FE.Failed(), routed[i])
			}
		}
		if got := done + lost + inside + queued + uint64(d.PendingRetries()); got != submitted {
			t.Fatalf("seed %d after %s: logical conservation: done %d + lost %d + inside %d + queued %d + pending %d != submitted %d",
				seed, op, done, lost, inside, queued, d.PendingRetries(), submitted)
		}
		if d.Failed() != lost {
			t.Fatalf("seed %d after %s: Failed() = %d, callbacks saw %d terminal losses",
				seed, op, d.Failed(), lost)
		}
	}

	var key uint64
	addSeq := 0
	for op := 0; op < 800; op++ {
		n := d.NumShards()
		switch r := rng.Float64(); {
		case r < 0.5: // submit, verifying the eligibility invariant
			states := d.States()
			before := d.Routed()
			key++
			submitted++
			tx := d.SubmitCB(profile(rng, key), cb)
			after := d.Routed()
			picked := -1
			for i := range after {
				if after[i] != before[i] {
					picked = i
					break
				}
			}
			upExists := false
			for _, s := range states {
				if s == ShardUp {
					upExists = true
				}
			}
			switch {
			case picked < 0:
				if !tx.Item.WasFailed() {
					t.Fatalf("seed %d: submission routed nowhere but not failed", seed)
				}
			case upExists && states[picked] != ShardUp:
				t.Fatalf("seed %d: routed to shard %d in state %s while an Up shard exists",
					seed, picked, states[picked])
			case !upExists && states[picked] != ShardDraining:
				t.Fatalf("seed %d: no Up shard, yet routed to shard %d in state %s",
					seed, picked, states[picked])
			}
			check("submit")
		case r < 0.8: // advance time (backoff timers fire here)
			eng.Run(eng.Now() + 0.05*rng.Float64())
			check("run")
		case r < 0.86:
			if err := d.FailShard(rng.Intn(n)); err != nil {
				t.Fatal(err)
			}
			check("fail")
		case r < 0.92:
			if err := d.RecoverShard(rng.Intn(n)); err != nil {
				t.Fatal(err)
			}
			check("recover")
		case r < 0.95:
			// Removing a down shard is a (deliberate) error; any other
			// failure is a bug.
			if err := d.RemoveShard(rng.Intn(n)); err != nil && !strings.Contains(err.Error(), "down") {
				t.Fatal(err)
			}
			check("remove")
		case r < 0.965:
			if n >= 6 {
				continue
			}
			addSeq++
			db, err := dbms.New(eng, dbms.Config{CPUs: 1, Disks: 1, Seed: uint64(1000*seed) + uint64(addSeq)})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.AddShard(Shard{FE: dbfe.New(eng, db, 2, nil), DB: db}); err != nil {
				t.Fatal(err)
			}
			check("add")
		case r < 0.985: // one autoscaler evaluation, acted on like the runner does
			up := d.UpCount()
			sig := 0.0
			if up > 0 {
				sig = float64(d.Inside()+d.QueueLen()) / float64(up)
			}
			switch asc.Observe(eng.Now(), up, sig) {
			case autoscale.ScaleUp:
				recovered := false
				for i := 0; i < d.NumShards(); i++ {
					if d.State(i) == ShardDown {
						if err := d.RecoverShard(i); err != nil {
							t.Fatal(err)
						}
						recovered = true
						break
					}
				}
				if !recovered && d.NumShards() < 6 {
					addSeq++
					db, err := dbms.New(eng, dbms.Config{CPUs: 1, Disks: 1, Seed: uint64(2000*seed) + uint64(addSeq)})
					if err != nil {
						t.Fatal(err)
					}
					if _, err := d.AddShard(Shard{FE: dbfe.New(eng, db, 2, nil), DB: db}); err != nil {
						t.Fatal(err)
					}
				}
			case autoscale.ScaleDown:
				for i := d.NumShards() - 1; i >= 0; i-- {
					if d.State(i) == ShardUp {
						if err := d.RemoveShard(i); err != nil {
							t.Fatal(err)
						}
						break
					}
				}
			}
			check("autoscale")
		default:
			d.SetMPL(rng.Intn(9))
			check("setmpl")
		}
	}

	// Drain: bring every shard back, lift the limit, and run past the
	// longest possible backoff chain. Every logical txn must finish or
	// be accounted a terminal loss.
	for i := 0; i < d.NumShards(); i++ {
		if d.State(i) == ShardDown {
			if err := d.RecoverShard(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.SetMPL(0)
	eng.Run(eng.Now() + 120)
	check("drain")
	if d.Inside() != 0 || d.QueueLen() != 0 || d.PendingRetries() != 0 {
		t.Fatalf("seed %d: not drained: inside %d queued %d pending %d",
			seed, d.Inside(), d.QueueLen(), d.PendingRetries())
	}
	if done+lost != submitted {
		t.Fatalf("seed %d: %d submitted, %d finished + %d lost", seed, submitted, done, lost)
	}
}

package gate

import (
	"context"
	"testing"
)

// BenchmarkGateAcquireRelease measures the uncontended fast path: an
// unlimited gate, so every Acquire admits immediately and Release
// never wakes a waiter. This is the pure overhead the gate adds to a
// guarded call (one Ticket + channel allocation, two mutexed hops).
func BenchmarkGateAcquireRelease(b *testing.B) {
	g, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tk, err := g.Acquire(ctx)
			if err != nil {
				b.Error(err)
				return
			}
			tk.Release(Result{})
		}
	})
}

// BenchmarkGateAcquireReleaseContended runs more goroutines than
// slots, so most Acquires queue and every Release hands its slot to a
// waiter — the handoff path a saturated service lives on.
func BenchmarkGateAcquireReleaseContended(b *testing.B) {
	g, err := New(Config{Limit: 4})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(4) // 4×GOMAXPROCS goroutines over 4 slots
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tk, err := g.Acquire(ctx)
			if err != nil {
				b.Error(err)
				return
			}
			tk.Release(Result{})
		}
	})
}

// BenchmarkGateAcquireReleaseWFQ exercises the most expensive policy
// on the contended path.
func BenchmarkGateAcquireReleaseWFQ(b *testing.B) {
	g, err := New(Config{Limit: 4, Policy: WFQ})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		class := Class(0)
		for pb.Next() {
			class ^= 1
			tk, err := g.AcquireRequest(ctx, Request{Class: class, SizeHint: 0.001})
			if err != nil {
				b.Error(err)
				return
			}
			tk.Release(Result{})
		}
	})
}

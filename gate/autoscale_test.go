package gate

import (
	"context"
	"reflect"
	"testing"
)

// TestPoolAutoscaleGrowsAndShrinks drives the live pool's autoscaler
// through a full cycle on a manual clock: held tickets build backlog
// until consecutive breach windows activate members one by one, then
// releasing everything and ticking through the calm hold parks them
// again, down to the floor.
func TestPoolAutoscaleGrowsAndShrinks(t *testing.T) {
	ck := &captureClock{}
	p, err := NewPool(PoolConfig{
		Members:  4,
		Dispatch: "jsq",
		Autoscale: &AutoscaleConfig{
			Min: 1, Max: 4,
			Interval:  1,
			HighWater: 3, LowWater: 0.5,
			BreachWindows: 2, CalmWindows: 2,
			Cooldown: 1,
		},
		Member: Config{Limit: 100, clock: ck},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Active(); got != 1 {
		t.Fatalf("pool starts with %d active members, want Min=1", got)
	}
	ctx := context.Background()
	var held []PoolTicket
	acquire := func() {
		t.Helper()
		tk, err := p.AcquireRequest(ctx, Request{})
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, tk)
	}
	// t=0: four held tickets on the lone active member. The evaluation
	// at t=0 sees an empty pool (the charges land after it).
	for i := 0; i < 4; i++ {
		acquire()
	}
	if got := p.Active(); got != 1 {
		t.Fatalf("active = %d before any breach window closed, want 1", got)
	}
	for _, n := range p.Routed()[1:] {
		if n != 0 {
			t.Fatalf("parked member took traffic: routed = %v", p.Routed())
		}
	}
	ck.t = 1
	acquire() // eval: backlog 4/1 >= 3, breach run 1
	ck.t = 2
	acquire() // breach run 2 -> scale up
	if got := p.Active(); got != 2 {
		t.Fatalf("active = %d after two breach windows, want 2", got)
	}
	ck.t = 3
	acquire() // backlog 6/2 = 3 >= 3, breach run 1
	ck.t = 4
	acquire() // breach run 2 -> scale up
	if got := p.Active(); got != 3 {
		t.Fatalf("active = %d after the second breach pair, want 3", got)
	}
	// Drain the pool and let the calm hold shrink it back to the floor.
	for _, tk := range held {
		tk.Release(Result{})
	}
	for tick := 5; tick <= 10; tick++ {
		ck.t = float64(tick)
		p.AutoscaleTick()
	}
	if got := p.Active(); got != 1 {
		t.Fatalf("active = %d after the calm hold, want Min=1", got)
	}
	ups, downs := p.AutoscaleCounts()
	if ups != 2 || downs != 2 {
		t.Errorf("autoscale counts = %d/%d, want 2 ups / 2 downs", ups, downs)
	}
	if st := p.MemberState(0); st != "up" {
		t.Errorf("member 0 state = %q, want up", st)
	}
	if st := p.MemberState(3); st != "parked" {
		t.Errorf("member 3 state = %q, want parked", st)
	}
	stats := p.Stats()
	for i, ss := range stats.Shards {
		want := "parked"
		if i == 0 {
			want = "up"
		}
		if ss.State != want {
			t.Errorf("Stats member %d state = %q, want %q", i, ss.State, want)
		}
	}
}

// TestPoolAutoscaleValidation: bounds are checked against the built
// fleet, and the autoscale accessors are inert no-ops on a plain pool.
func TestPoolAutoscaleValidation(t *testing.T) {
	if _, err := NewPool(PoolConfig{
		Members:   2,
		Autoscale: &AutoscaleConfig{Min: 1, Max: 8},
		Member:    Config{Limit: 1},
	}); err == nil {
		t.Error("autoscale max above the member count accepted")
	}
	if _, err := NewPool(PoolConfig{
		Members:   2,
		Autoscale: &AutoscaleConfig{Min: 0, Max: 2},
		Member:    Config{Limit: 1},
	}); err == nil {
		t.Error("autoscale min 0 accepted")
	}
	p, err := NewPool(PoolConfig{Members: 3, Member: Config{Limit: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Active(); got != 3 {
		t.Errorf("plain pool Active() = %d, want all 3 members", got)
	}
	p.AutoscaleTick() // must not panic or change anything
	if ups, downs := p.AutoscaleCounts(); ups != 0 || downs != 0 {
		t.Errorf("plain pool autoscale counts = %d/%d, want 0/0", ups, downs)
	}
}

// TestPoolSampledDispatchDeterministic: two pools built alike route a
// held-ticket sequence identically under "jsq-d" — the sampled picks
// come from a seeded stream, not global randomness — and never touch a
// parked member.
func TestPoolSampledDispatchDeterministic(t *testing.T) {
	build := func() *Pool {
		p, err := NewPool(PoolConfig{
			Members:  8,
			Dispatch: "jsq-d:2",
			Member:   Config{Limit: 100, Seed: 9},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(), build()
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if _, err := a.AcquireRequest(ctx, Request{}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AcquireRequest(ctx, Request{}); err != nil {
			t.Fatal(err)
		}
	}
	if ra, rb := a.Routed(), b.Routed(); !reflect.DeepEqual(ra, rb) {
		t.Errorf("identical pools routed differently:\n%v\nvs\n%v", ra, rb)
	}

	// With the autoscaler holding the active set at 2, sampled dispatch
	// must confine itself to the active prefix.
	ck := &captureClock{}
	p, err := NewPool(PoolConfig{
		Members:   8,
		Dispatch:  "jsq-d:3",
		Autoscale: &AutoscaleConfig{Min: 2, Max: 8, HighWater: 1e9},
		Member:    Config{Limit: 100, clock: ck},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		ck.t = float64(i) // a fresh evaluation every route; never breaches
		if _, err := p.AcquireRequest(ctx, Request{}); err != nil {
			t.Fatal(err)
		}
	}
	routed := p.Routed()
	if routed[0]+routed[1] != 32 {
		t.Errorf("active members took %d of 32 routes: %v", routed[0]+routed[1], routed)
	}
	for i := 2; i < 8; i++ {
		if routed[i] != 0 {
			t.Errorf("parked member %d took %d routes under jsq-d", i, routed[i])
		}
	}
}

// Package workload reproduces the paper's experimental workloads: the
// six Table 1 workload definitions derived from TPC-C and TPC-W by
// varying benchmark and hardware parameters, and the seventeen Table 2
// setups that combine them with CPU counts, disk counts and isolation
// levels. It provides transaction-profile generators plus closed
// (fixed client population) and open (Poisson) drivers.
//
// The real TPC kits are not reproducible offline, so each workload is a
// parametric transaction mix calibrated to the characteristics the
// paper reports: total service demand (which fixes the saturation
// throughput), CPU/IO balance, buffer-pool miss behaviour, lock
// hot-spot contention, and — critically for Section 3.2 — the squared
// coefficient of variation of service demand (C² ≈ 1–1.5 for the
// TPC-C-like workloads, C² ≈ 15 for the TPC-W-like ones).
package workload

import (
	"fmt"
	"slices"

	"extsched/internal/bufferpool"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
)

// TxnType is one transaction class within a workload mix (e.g.
// NewOrder, Payment, BestSeller).
type TxnType struct {
	Name string
	// Prob is the mix probability; probabilities in a Spec sum to 1.
	Prob float64
	// Ops is the number of operations (statements) in the transaction.
	Ops int
	// CPUPerOp is the CPU demand per operation in seconds.
	CPUPerOp dist.Distribution
	// PagesPerOp is the number of page accesses per operation.
	PagesPerOp int
	// WriteFrac is the probability that an operation takes an X lock.
	WriteFrac float64
	// HotKeyProb is the probability an operation's lock key falls in
	// the workload's hot key set (contended rows: warehouse rows in
	// TPC-C, popular items in TPC-W).
	HotKeyProb float64
}

// Spec is a full workload definition (a Table 1 row).
type Spec struct {
	Name      string
	Benchmark string // provenance: "TPC-C" or "TPC-W"
	Types     []TxnType
	// HotLockKeys is the size of the contended lock-key space.
	HotLockKeys uint64
	// DBPages is the database size in pages.
	DBPages uint64
	// HotFrac / HotAccess parameterize the buffer-pool access skew.
	HotFrac   float64
	HotAccess float64
	// BufferPoolPages is the Table 1 buffer-pool size in pages.
	BufferPoolPages int
	// DiskService is the per-I/O service time.
	DiskService dist.Distribution
	// LogService is the per-commit log write time.
	LogService dist.Distribution
	// Clients is the TPC-specified client population (the paper uses
	// 100 experimentally for all workloads).
	Clients int
	// CanonicalKeyOrder makes every transaction acquire its lock keys
	// in ascending order, the deadlock-avoiding access discipline that
	// TPC-C's warehouse→district→stock schema imposes naturally.
	// TPC-W's cart/checkout updates have no such canonical order, so
	// the ordering mix leaves this false and exhibits the paper's
	// lock-thrashing decline at high MPLs (Fig. 5).
	CanonicalKeyOrder bool
}

// Pattern returns the buffer-pool access pattern.
func (s Spec) Pattern() bufferpool.AccessPattern {
	return bufferpool.AccessPattern{DBPages: s.DBPages, HotFrac: s.HotFrac, HotAccess: s.HotAccess}
}

// MissRatio estimates the steady-state buffer-pool miss ratio under
// this spec's default pool size (Che approximation).
func (s Spec) MissRatio() float64 {
	return s.Pattern().ExpectedMissRatio(s.BufferPoolPages)
}

// MeanCPUDemand returns the mix-average CPU seconds per transaction.
func (s Spec) MeanCPUDemand() float64 {
	total := 0.0
	for _, t := range s.Types {
		total += t.Prob * float64(t.Ops) * t.CPUPerOp.Mean()
	}
	return total
}

// MeanPageAccesses returns the mix-average page accesses per
// transaction.
func (s Spec) MeanPageAccesses() float64 {
	total := 0.0
	for _, t := range s.Types {
		total += t.Prob * float64(t.Ops*t.PagesPerOp)
	}
	return total
}

// MeanIODemand returns the mix-average disk seconds per transaction
// under the default pool size (misses × disk service), excluding the
// commit log write.
func (s Spec) MeanIODemand() float64 {
	return s.MeanPageAccesses() * s.MissRatio() * s.DiskService.Mean()
}

// Validate checks the mix probabilities and parameters.
func (s Spec) Validate() error {
	if len(s.Types) == 0 {
		return fmt.Errorf("workload %s: no transaction types", s.Name)
	}
	total := 0.0
	for _, t := range s.Types {
		if t.Prob < 0 || t.Ops < 1 || t.CPUPerOp == nil {
			return fmt.Errorf("workload %s: bad type %+v", s.Name, t.Name)
		}
		if t.WriteFrac < 0 || t.WriteFrac > 1 || t.HotKeyProb < 0 || t.HotKeyProb > 1 {
			return fmt.Errorf("workload %s type %s: probabilities out of range", s.Name, t.Name)
		}
		total += t.Prob
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload %s: mix probabilities sum to %v", s.Name, total)
	}
	if s.DBPages < 1 || s.BufferPoolPages < 1 {
		return fmt.Errorf("workload %s: invalid sizing", s.Name)
	}
	if err := (s.Pattern()).Validate(); err != nil {
		return err
	}
	return nil
}

// Generator draws transaction profiles from a Spec.
type Generator struct {
	Spec Spec
	// HighFrac is the fraction of transactions tagged High priority
	// (the paper tags 10% at random).
	HighFrac float64
	rng      *sim.RNG
	cum      []float64
	pattern  bufferpool.AccessPattern
	missEst  float64
	coldSeq  uint64
	// mix, when non-nil, replaces the two-class HighFrac tagging with
	// an N-tenant arrival mix (see SetMix / TenantMix in tenant.go).
	mix     []TenantMix
	mixCum  []float64
	mixSize []dist.Distribution
}

// NewGenerator validates the spec and returns a deterministic
// generator seeded by seed.
func NewGenerator(spec Spec, seed uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		Spec:     spec,
		HighFrac: 0.1,
		rng:      sim.NewRNG(seed, 7),
		pattern:  spec.Pattern(),
		missEst:  spec.MissRatio(),
	}
	total := 0.0
	for _, t := range spec.Types {
		total += t.Prob
		g.cum = append(g.cum, total)
	}
	g.cum[len(g.cum)-1] = 1
	return g, nil
}

// Next draws a profile, tagging it High with probability HighFrac —
// or, when a tenant mix is installed (SetMix), drawing the tenant
// class from the mix shares and applying the tenant's size scaling.
func (g *Generator) Next() dbms.TxnProfile {
	if g.mix != nil {
		return g.nextTenant()
	}
	class := lockmgr.Low
	if g.rng.Float64() < g.HighFrac {
		class = lockmgr.High
	}
	return g.NextWithClass(class)
}

// NextWithClass draws a profile with a fixed class.
func (g *Generator) NextWithClass(class lockmgr.Class) dbms.TxnProfile {
	u := g.rng.Float64()
	ti := len(g.Spec.Types) - 1
	for i, c := range g.cum {
		if u < c {
			ti = i
			break
		}
	}
	tt := g.Spec.Types[ti]
	ops := make([]dbms.Op, tt.Ops)
	keys := make([]uint64, tt.Ops)
	demand := 0.0
	for i := range ops {
		if g.rng.Float64() < tt.HotKeyProb && g.Spec.HotLockKeys > 0 {
			keys[i] = g.rng.Uint64() % g.Spec.HotLockKeys
		} else {
			// Cold keys are effectively unique: allocate from a
			// monotonically increasing space far above the hot keys.
			g.coldSeq++
			keys[i] = 1<<32 + g.coldSeq
		}
		pages := make([]uint64, tt.PagesPerOp)
		for p := range pages {
			pages[p] = g.pattern.Sample(g.rng)
		}
		cpu := tt.CPUPerOp.Sample(g.rng)
		demand += cpu + float64(len(pages))*g.missEst*g.Spec.DiskService.Mean()
		ops[i] = dbms.Op{
			Write:   g.rng.Float64() < tt.WriteFrac,
			CPUWork: cpu,
			Pages:   pages,
		}
	}
	// Under CanonicalKeyOrder, assign lock keys in ascending order
	// across the transaction's operations: contention (queueing on hot
	// locks) is preserved; only the acquisition ORDER is canonicalized,
	// which is what keeps TPC-C's deadlock rate low despite hot spots.
	if g.Spec.CanonicalKeyOrder {
		slices.Sort(keys)
	}
	for i := range ops {
		ops[i].Key = keys[i]
	}
	return dbms.TxnProfile{Ops: ops, Class: class, EstimatedDemand: demand}
}

// Sink accepts generated transactions: the single-backend frontend
// (dbfe.Frontend) and the sharded cluster dispatcher
// (cluster.Dispatcher) both satisfy it, which is what lets one driver
// implementation feed either a lone DBMS or a whole fleet of shards.
type Sink interface {
	// Submit delivers a transaction for execution.
	Submit(dbms.TxnProfile) *dbfe.Txn
	// SubmitCB is Submit with a completion callback (closed-loop
	// clients cycle on it). cb runs before the sink-wide completion
	// hook.
	SubmitCB(dbms.TxnProfile, func(*dbfe.Txn)) *dbfe.Txn
}

// Driver is the common control surface of the workload drivers, which
// is what lets the scenario runner treat a phase's traffic source
// uniformly. Start launches the traffic, Stop ends it for good, and
// Pause/Resume suspend and revive it mid-run (a scenario phase that
// silences one source while another takes over). All drivers are
// single-goroutine: they run inside their engine's event loop.
type Driver interface {
	// Start launches the traffic at the engine's current time. Call
	// exactly once.
	Start()
	// Stop permanently ends new submissions; in-flight work completes
	// normally.
	Stop()
	// Pause suspends new submissions until Resume. Pausing a stopped
	// driver is a no-op.
	Pause()
	// Resume revives a paused driver. Resuming a running or stopped
	// driver is a no-op.
	Resume()
}

// ClosedDriver runs a fixed population of clients against a frontend:
// each client submits a transaction, waits for its completion, thinks,
// and repeats — the paper's Section 3.1 closed system with 100 clients.
type ClosedDriver struct {
	eng     *sim.Engine
	fe      Sink
	gen     *Generator
	clients int
	think   dist.Distribution
	rng     *sim.RNG
	stopped bool
	paused  bool
	// parked counts clients that completed a transaction while paused;
	// Resume restarts exactly these.
	parked int
}

// NewClosedDriver builds a driver with the given client count and
// think-time distribution (use dist.NewDeterministic(0) for no think).
func NewClosedDriver(eng *sim.Engine, fe Sink, gen *Generator, clients int, think dist.Distribution) *ClosedDriver {
	if clients < 1 {
		panic(fmt.Sprintf("workload: clients %d must be >= 1", clients))
	}
	if think == nil {
		think = dist.NewDeterministic(0)
	}
	return &ClosedDriver{eng: eng, fe: fe, gen: gen, clients: clients, think: think, rng: sim.NewRNG(gen.rng.Uint64(), 9)}
}

// Start launches all clients at time zero.
func (d *ClosedDriver) Start() {
	for i := 0; i < d.clients; i++ {
		d.cycle()
	}
}

// Stop prevents clients from submitting further transactions.
func (d *ClosedDriver) Stop() { d.stopped = true }

// Pause parks each client as its current transaction (or think time)
// finishes; no new transactions are submitted until Resume.
func (d *ClosedDriver) Pause() {
	if !d.stopped {
		d.paused = true
	}
}

// Resume restarts every parked client at the engine's current time.
func (d *ClosedDriver) Resume() {
	if d.stopped || !d.paused {
		return
	}
	d.paused = false
	n := d.parked
	d.parked = 0
	for i := 0; i < n; i++ {
		d.cycle()
	}
}

func (d *ClosedDriver) cycle() {
	if d.stopped {
		return
	}
	if d.paused {
		d.parked++
		return
	}
	d.fe.SubmitCB(d.gen.Next(), func(*dbfe.Txn) {
		if d.stopped {
			return
		}
		if d.paused {
			d.parked++
			return
		}
		z := d.think.Sample(d.rng)
		if z <= 0 {
			d.cycle()
			return
		}
		d.eng.After(z, func() { d.cycle() })
	})
}

// OpenDriver submits transactions as a Poisson process — the paper's
// Section 3.2 open system.
type OpenDriver struct {
	eng     *sim.Engine
	fe      Sink
	gen     *Generator
	lambda  float64
	rng     *sim.RNG
	stopped bool
	paused  bool
	pending sim.Handle
	arrived uint64
	limit   uint64 // 0 = unlimited
}

// NewOpenDriver builds a Poisson driver with rate lambda (> 0)
// transactions per second. limit caps total arrivals (0 = none).
func NewOpenDriver(eng *sim.Engine, fe Sink, gen *Generator, lambda float64, limit uint64) *OpenDriver {
	if lambda <= 0 {
		panic(fmt.Sprintf("workload: lambda %v must be positive", lambda))
	}
	return &OpenDriver{eng: eng, fe: fe, gen: gen, lambda: lambda, rng: sim.NewRNG(gen.rng.Uint64(), 13), limit: limit}
}

// Start schedules the first arrival.
func (d *OpenDriver) Start() { d.next() }

// Stop halts future arrivals.
func (d *OpenDriver) Stop() { d.stopped = true }

// Pause cancels the pending arrival; the Poisson process is memoryless,
// so Resume simply draws a fresh exponential gap.
func (d *OpenDriver) Pause() {
	if d.stopped || d.paused {
		return
	}
	d.paused = true
	d.eng.Cancel(d.pending)
}

// Resume restarts arrivals from the engine's current time.
func (d *OpenDriver) Resume() {
	if d.stopped || !d.paused {
		return
	}
	d.paused = false
	d.next()
}

// Arrived returns the number of arrivals so far.
func (d *OpenDriver) Arrived() uint64 { return d.arrived }

func (d *OpenDriver) next() {
	if d.stopped || d.paused || (d.limit > 0 && d.arrived >= d.limit) {
		return
	}
	d.pending = d.eng.After(d.rng.ExpFloat64()/d.lambda, func() {
		if d.stopped || d.paused || (d.limit > 0 && d.arrived >= d.limit) {
			return
		}
		d.arrived++
		d.fe.Submit(d.gen.Next())
		d.next()
	})
}

package gate

import (
	"fmt"

	"extsched/internal/core"
	"extsched/internal/fairness"
)

// FairnessConfig parameterizes the N-tenant weighted max-min fairness
// loop for a live gate: partition the gate's limit across the weighted
// tenant classes and steer the split so each tenant's weight-normalized
// attained service equalizes. The mechanism is the same class-partition
// machinery the SLO loop drives (work-conserving — idle slots are still
// lent across the partition), with the policy generalized from one
// protected class to N weighted tenants.
type FairnessConfig struct {
	// Weights maps each governed tenant class to its relative share
	// weight (every weight > 0; >= 2 classes). Nil means "govern the
	// registered tenants": the classes and weights passed to
	// RegisterClass.
	Weights map[Class]float64
	// MinObservations gates fairness-window close (0 = 50).
	MinObservations int
	// Hysteresis is the imbalance ratio a busy donor must exceed before
	// a slot moves (0 = 1.2; must be >= 1 otherwise).
	Hysteresis float64
	// Strict makes the partition a hard cap: a tenant at its limit
	// never borrows idle capacity. Trades utilization for latency
	// isolation. Default false (work-conserving borrowing).
	Strict bool
}

// FairnessStatus reports the fairness loop's progress.
type FairnessStatus struct {
	// Enabled is false until EnableFairness succeeds.
	Enabled bool
	// Limits is the current per-tenant slot partition (sums to the
	// gate's limit).
	Limits map[Class]int
	// Iterations counts completed reactions; Moves how many of them
	// actually moved a slot.
	Iterations, Moves int
}

// fairTuner pairs the fairness controller with its wiring state.
type fairTuner struct {
	ctl *fairness.Controller
}

// EnableFairness attaches the weighted max-min fairness controller to
// the gate's completion stream: every Release feeds an observation
// window, and each closed window moves at most one slot from the most-
// overserved tenant (idle tenants donate first) to the most-underserved
// one. Two invariants hold after every reaction: the per-tenant limits
// sum to the gate's limit, and every governed tenant keeps at least one
// slot — an aggressor can never capture the whole gate. The gate needs
// a finite limit of at least one slot per governed tenant. Enabling
// twice replaces the previous loop and restarts the metrics window.
// Fairness, auto-tune and SLO tuning are mutually exclusive: all three
// close observation windows by resetting the gate's one metrics window.
func (g *Gate) EnableFairness(fc FairnessConfig) error {
	g.tuneMu.Lock()
	defer g.tuneMu.Unlock()
	if g.ctl.Load() != nil {
		return fmt.Errorf("gate: fairness and auto-tune share the metrics window; DisableAutoTune first")
	}
	if g.slo.Load() != nil {
		return fmt.Errorf("gate: fairness and SLO tuning share the metrics window; DisableSLOTune first")
	}
	weights := make(map[core.Class]float64, len(fc.Weights))
	if fc.Weights == nil {
		for _, t := range g.fe.Tenants() {
			weights[t.Class] = t.Weight
		}
		if len(weights) < 2 {
			return fmt.Errorf("gate: fairness over registered tenants needs >= 2 RegisterClass calls (have %d); or pass explicit Weights", len(weights))
		}
	} else {
		for c, w := range fc.Weights {
			weights[core.Class(c)] = w
		}
	}
	ctl, err := fairness.New(g.fe, fairness.Config{
		Weights:         weights,
		MinObservations: fc.MinObservations,
		Hysteresis:      fc.Hysteresis,
		Strict:          fc.Strict,
	})
	if err != nil {
		return err
	}
	g.fair.Store(&fairTuner{ctl: ctl})
	return nil
}

// DisableFairness detaches the fairness loop; the tenant partition
// stays where it left it (clear it with SetClassLimits(nil)), but a
// strict partition relaxes back to work-conserving — a frozen hard cap
// with no controller rebalancing it could idle capacity forever.
func (g *Gate) DisableFairness() {
	g.tuneMu.Lock()
	defer g.tuneMu.Unlock()
	g.fair.Store(nil)
	g.fe.SetStrictPartition(false)
}

// FairnessStatus reports the fairness loop's state (zero value when
// fairness was never enabled).
func (g *Gate) FairnessStatus() FairnessStatus {
	f := g.fair.Load()
	if f == nil {
		return FairnessStatus{}
	}
	limits := f.ctl.Limits()
	out := make(map[Class]int, len(limits))
	for c, l := range limits {
		out[Class(c)] = l
	}
	return FairnessStatus{
		Enabled:    true,
		Limits:     out,
		Iterations: f.ctl.Iterations(),
		Moves:      f.ctl.Moves(),
	}
}

// Package extsched is a reproduction of Schroeder, Harchol-Balter,
// Iyengar, Nahum and Wierman, "How to determine a good
// multi-programming level for external scheduling" (ICDE 2006).
//
// It provides:
//
//   - a discrete-event-simulated transactional DBMS (multi-core PS
//     CPU, striped disks + group-commit log device, LRU buffer pool
//     with optional checkpointer, strict-2PL lock manager with
//     deadlock detection, wait timeouts and Preempt-on-Wait, plus a
//     PostgreSQL-style snapshot-isolation mode);
//   - the paper's external scheduling front-end: an MPL gate with a
//     reorderable external queue (FIFO / Priority / SJF / WFQ) and an
//     optional admission-control drop mode;
//   - the queueing models of Sections 4.1–4.2 (closed-network MVA and
//     the matrix-geometric solution of the FIFO→PS-with-MPL chain);
//   - the Section 4.3 feedback controller that auto-tunes the MPL to
//     DBA-specified throughput/response-time tolerances; and
//   - drivers that regenerate every figure and table of the paper's
//     evaluation (see the experiments subcommands of cmd/benchrunner
//     and the benchmarks at the repository root).
//
// The System type in this package is the high-level entry point: it
// binds a simulated DBMS configuration — one of the paper's Table 2
// setups, or a custom one — to the external scheduler, and runs
// declarative Scenarios against it: ordered phases of traffic (closed
// populations, open Poisson, bursty MMPP, rate ramps, trace replays)
// with mid-phase control events (MPL changes, queue reweighting, the
// feedback controller). Each Run rebuilds pristine simulation state
// from the Config's seed, so a System is reusable and repeated runs
// are bit-identical. RunClosed, RunOpen and AutoTune are thin wrappers
// over one-phase scenarios; streaming time-series metrics flow to
// metrics.Observer implementations registered with Observe. Lower-
// level building blocks live in the internal packages.
package extsched

import (
	"context"
	"fmt"

	"extsched/internal/cluster"
	"extsched/internal/controller"
	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/lockmgr"
	"extsched/internal/queueing/mva"
	"extsched/internal/queueing/qbd"
	"extsched/internal/runner"
	"extsched/internal/sim"
	"extsched/internal/workload"
	"extsched/metrics"
)

// Policy names accepted by Config.Policy.
const (
	PolicyFIFO     = "fifo"
	PolicyPriority = "priority"
	PolicySJF      = "sjf"
	PolicyWFQ      = "wfq"
)

// Config assembles a simulated system.
type Config struct {
	// SetupID selects one of the paper's Table 2 setups (1-17).
	// Zero means use the explicit fields below instead.
	SetupID int
	// Workload names a Table 1 workload (e.g. "W_CPU-inventory") when
	// SetupID is zero.
	Workload string
	// CPUs / Disks / Isolation configure the hardware when SetupID is
	// zero. Isolation is "RR" (default) or "UR".
	CPUs, Disks int
	Isolation   string
	// MPL is the multiprogramming limit; 0 = unlimited.
	MPL int
	// Policy orders the external queue: "fifo" (default), "priority",
	// "sjf", or "wfq".
	Policy string
	// InternalLockPriority enables priority lock queues with
	// Preempt-on-Wait (the Shore experiment of Section 5.2).
	InternalLockPriority bool
	// InternalCPUPriority enables renice-style CPU priorities (the DB2
	// experiment of Section 5.2).
	InternalCPUPriority bool
	// HighPriorityFraction tags this fraction of transactions High
	// (default 0.1, the paper's choice).
	HighPriorityFraction float64
	// WFQHighWeight sets the High class's weight for the "wfq" policy
	// (Low gets 1). Default 4.
	WFQHighWeight float64
	// QueueLimit, when > 0, switches the frontend to admission-control
	// mode: arrivals beyond the limit are dropped (the related-work
	// comparison; pure external scheduling never drops).
	QueueLimit int
	// PercentileSamples, when > 0, reservoir-samples response times so
	// Report carries P50/P95/P99 and the per-class HighP95/LowP95.
	// Setting SLO or AdmitDeadline defaults it to 2048 — those features
	// are judged by per-class tails, so the report must carry them.
	PercentileSamples int
	// SLO, when non-nil, runs every scenario under the latency-SLO
	// controller from the start of its measurement window: the MPL is
	// partitioned across the classes and the split steered to hold the
	// protected class's percentile target. Requires MPL >= 2 and an
	// unsharded system. Scenario SetSLO events can replace it mid-run.
	SLO *SLOSpec
	// ClassLimits, when non-nil, installs a static per-class MPL
	// partition from the start (unsharded systems only).
	ClassLimits *ClassLimits
	// AdmitDeadline, when non-nil, sets per-class admission deadlines:
	// transactions that cannot start in time are shed (counted in
	// Report.Shed) instead of queueing unboundedly.
	AdmitDeadline *AdmitDeadline
	// Recovery configures what happens to the work a failed shard held
	// when a scenario injects faults (shard_fail events or a churn
	// phase). Nil sheds: the work is lost and counted in Report.Failed.
	// Sharded systems only.
	Recovery *RecoverySpec
	// Shards, when Count > 0, fronts a fleet of identical backends
	// instead of one: every run builds Count DBMS+frontend pairs and a
	// dispatch layer that routes each arriving transaction to one of
	// them. MPL then reads as the cluster-wide limit (split across
	// shards), and QueueLimit applies per shard.
	Shards ShardSpec
	// Seed fixes all randomness (default 1).
	Seed uint64
}

// Recovery modes accepted by RecoverySpec.Mode.
const (
	// RecoveryShed loses a dead shard's work: each txn's callback fires
	// with failure marked, and the loss is counted in Report.Failed.
	RecoveryShed = "shed"
	// RecoveryResubmit re-routes a dead shard's work to surviving
	// shards after a deterministic capped exponential backoff, up to
	// RetryBudget attempts per transaction.
	RecoveryResubmit = "resubmit"
)

// RecoverySpec configures the sharded fault model's recovery policy.
type RecoverySpec struct {
	// Mode is RecoveryShed (default) or RecoveryResubmit.
	Mode string `json:"mode,omitempty"`
	// RetryBudget is the maximum recovery attempts per logical
	// transaction; required >= 1 for resubmit mode.
	RetryBudget int `json:"retry_budget,omitempty"`
	// BackoffBase and BackoffCap bound the backoff schedule in seconds:
	// attempt k waits min(cap, base·2^(k−1)) scaled by deterministic
	// jitter in [0.5, 1). Zero values default to 0.05 s / 2 s.
	BackoffBase float64 `json:"backoff_base,omitempty"`
	BackoffCap  float64 `json:"backoff_cap,omitempty"`
}

// ShardSpec configures multi-backend sharded dispatch.
type ShardSpec struct {
	// Count is the number of shards (0 = unsharded single backend).
	Count int
	// Speeds are per-shard relative CPU speed multipliers (1 =
	// nominal); empty means all 1, otherwise len must equal Count.
	// Scenario SetShardSpeed events change them mid-run.
	Speeds []float64
	// Dispatch names the routing policy: "rr" (default), "jsq", "lwl",
	// "affinity", or the sampled power-of-d variants "jsq-d"/"lwl-d"
	// with an optional width suffix like "jsq-d:3" (see
	// internal/cluster). Sampled policies draw from a dedicated seeded
	// stream, so runs stay bit-identical. Scenario SetDispatch events
	// switch the policy mid-run.
	Dispatch string
}

// Validate checks the config's standalone fields up front, before any
// simulation state is built: limits must be non-negative, names must
// be known. NewSystem calls it; call it directly to vet user-supplied
// configs (CLI flags, API payloads) cheaply.
func (c Config) Validate() error {
	if c.SetupID == 0 && c.Workload == "" {
		return fmt.Errorf("extsched: either SetupID or Workload is required")
	}
	if c.MPL < 0 {
		return fmt.Errorf("extsched: MPL %d must be >= 0", c.MPL)
	}
	if c.CPUs < 0 || c.Disks < 0 {
		return fmt.Errorf("extsched: CPUs %d and Disks %d must be >= 0", c.CPUs, c.Disks)
	}
	switch c.Policy {
	case "", PolicyFIFO, PolicyPriority, PolicySJF, PolicyWFQ:
	default:
		return fmt.Errorf("extsched: unknown policy %q (want %s, %s, %s or %s)",
			c.Policy, PolicyFIFO, PolicyPriority, PolicySJF, PolicyWFQ)
	}
	if _, err := parseIsolation(c.Isolation); err != nil {
		return err
	}
	if c.HighPriorityFraction < 0 || c.HighPriorityFraction > 1 {
		return fmt.Errorf("extsched: HighPriorityFraction %v outside [0,1]", c.HighPriorityFraction)
	}
	if c.WFQHighWeight < 0 {
		return fmt.Errorf("extsched: WFQHighWeight %v must be >= 0 (0 = default)", c.WFQHighWeight)
	}
	if c.QueueLimit < 0 {
		return fmt.Errorf("extsched: QueueLimit %d must be >= 0", c.QueueLimit)
	}
	if c.PercentileSamples < 0 {
		return fmt.Errorf("extsched: PercentileSamples %d must be >= 0", c.PercentileSamples)
	}
	if s := c.SLO; s != nil {
		rs, err := s.spec()
		if err != nil {
			return err
		}
		if err := rs.Validate(); err != nil {
			return err
		}
		if c.MPL < 2 {
			return fmt.Errorf("extsched: SLO control needs MPL >= 2 to partition, have %d", c.MPL)
		}
		if c.Shards.Count > 0 {
			return fmt.Errorf("extsched: SLO control on a sharded system is not supported")
		}
	}
	if cl := c.ClassLimits; cl != nil {
		if cl.High < 1 || cl.Low < 1 {
			return fmt.Errorf("extsched: class limits high=%d low=%d must both be >= 1", cl.High, cl.Low)
		}
		if c.Shards.Count > 0 {
			return fmt.Errorf("extsched: ClassLimits on a sharded system is not supported")
		}
	}
	if ad := c.AdmitDeadline; ad != nil {
		if ad.High < 0 || ad.Low < 0 {
			return fmt.Errorf("extsched: admit deadlines high=%v low=%v must be >= 0", ad.High, ad.Low)
		}
	}
	if c.Shards.Count < 0 {
		return fmt.Errorf("extsched: Shards.Count %d must be >= 0", c.Shards.Count)
	}
	if n := len(c.Shards.Speeds); n > 0 && n != c.Shards.Count {
		return fmt.Errorf("extsched: Shards.Speeds has %d entries for %d shards", n, c.Shards.Count)
	}
	for i, s := range c.Shards.Speeds {
		if s <= 0 {
			return fmt.Errorf("extsched: shard %d speed %v must be positive", i, s)
		}
	}
	if c.Shards.Count == 0 && (len(c.Shards.Speeds) > 0 || c.Shards.Dispatch != "") {
		return fmt.Errorf("extsched: Shards.Speeds/Dispatch set without Shards.Count")
	}
	if r := c.Recovery; r != nil {
		if c.Shards.Count == 0 {
			return fmt.Errorf("extsched: Recovery set without Shards.Count")
		}
		switch r.Mode {
		case "", RecoveryShed:
			// The budget and backoff are resubmit-mode knobs.
		case RecoveryResubmit:
			if r.RetryBudget < 1 {
				return fmt.Errorf("extsched: resubmit recovery needs RetryBudget >= 1, have %d", r.RetryBudget)
			}
		default:
			return fmt.Errorf("extsched: unknown recovery mode %q (want %s or %s)", r.Mode, RecoveryShed, RecoveryResubmit)
		}
		if r.RetryBudget < 0 {
			return fmt.Errorf("extsched: RetryBudget %d must be >= 0", r.RetryBudget)
		}
		if r.BackoffBase < 0 || r.BackoffCap < 0 {
			return fmt.Errorf("extsched: backoff base %v and cap %v must be >= 0", r.BackoffBase, r.BackoffCap)
		}
		if r.BackoffBase > 0 && r.BackoffCap > 0 && r.BackoffBase > r.BackoffCap {
			return fmt.Errorf("extsched: backoff base %v exceeds cap %v", r.BackoffBase, r.BackoffCap)
		}
	}
	if _, err := cluster.NewPolicy(c.Shards.Dispatch); err != nil {
		return err
	}
	return nil
}

// System binds a resolved configuration to the scenario engine. It
// holds no simulation state between runs: Run (and the RunClosed /
// RunOpen / AutoTune wrappers) each assemble a pristine engine, DBMS,
// frontend and generator from the Config's seed, which is what makes a
// System reusable and its runs reproducible. A System is not safe for
// concurrent use; build one per goroutine (they are cheap — assembly
// happens per run).
type System struct {
	cfg       Config
	setup     workload.Setup
	observers []metrics.Observer
	// cur points at the executing run's stack while Run is on the
	// call stack, so MPL/SetMPL work from observer callbacks.
	cur *runner.Stack
}

// parseIsolation is the single source of truth for isolation-level
// names ("" defaults to RR). Config.Validate and resolveSetup both use
// it, so the accepted set cannot drift between validation and
// assembly.
func parseIsolation(name string) (dbms.Isolation, error) {
	switch name {
	case "", "RR":
		return dbms.RR, nil
	case "UR":
		return dbms.UR, nil
	case "SI":
		return dbms.SI, nil
	default:
		return 0, fmt.Errorf("extsched: unknown isolation %q (want RR, UR or SI)", name)
	}
}

// resolveSetup maps a Config to a workload.Setup.
func resolveSetup(cfg Config) (workload.Setup, error) {
	if cfg.SetupID != 0 {
		return workload.SetupByID(cfg.SetupID)
	}
	if cfg.Workload == "" {
		return workload.Setup{}, fmt.Errorf("extsched: either SetupID or Workload is required")
	}
	spec, err := workload.ByName(cfg.Workload)
	if err != nil {
		return workload.Setup{}, err
	}
	cpus, disks := cfg.CPUs, cfg.Disks
	if cpus == 0 {
		cpus = 1
	}
	if disks == 0 {
		disks = 1
	}
	iso, err := parseIsolation(cfg.Isolation)
	if err != nil {
		return workload.Setup{}, err
	}
	return workload.Setup{ID: 0, Workload: spec, CPUs: cpus, Disks: disks, Isolation: iso}, nil
}

// NewSystem validates cfg and resolves its setup. No simulation state
// is built here — that happens per Run.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	setup, err := resolveSetup(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	// Vet the policy name and workload spec now, so configuration
	// errors surface at construction rather than on the first Run.
	if _, err := core.NewPolicy(cfg.Policy, nil); err != nil {
		return nil, err
	}
	if err := setup.Workload.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, setup: setup}, nil
}

// Observe registers observers that every subsequent Run streams
// interval snapshots to (when the scenario sets SampleInterval).
// Observers are called synchronously on the simulation goroutine, so
// they may inspect the System — or steer it via SetMPL — mid-run.
func (s *System) Observe(obs ...metrics.Observer) {
	s.observers = append(s.observers, obs...)
}

// buildStack assembles the pristine per-run simulation state. With
// parallel (scenario opt-in, sharded systems only) each shard's
// DBMS+frontend pair is built on its own member engine and the stack
// carries a conservative parallel ensemble over them; everything else
// — drivers, dispatcher, runner timers — stays on the coordinator.
func (s *System) buildStack(mpl int, parallel bool) (runner.Stack, error) {
	cfg := s.cfg
	w := cfg.WFQHighWeight
	if w <= 0 {
		w = 4
	}
	wfqWeights := map[core.Class]float64{core.ClassHigh: w, core.ClassLow: 1}
	dbo := workload.DBOptions{
		LockPolicy:  map[bool]lockmgr.Policy{true: lockmgr.PriorityFIFO, false: lockmgr.FIFO}[cfg.InternalLockPriority],
		POW:         cfg.InternalLockPriority,
		CPUPriority: cfg.InternalCPUPriority,
		Seed:        cfg.Seed,
	}
	eng := sim.NewEngine()
	gen, err := workload.NewGenerator(s.setup.Workload, cfg.Seed)
	if err != nil {
		return runner.Stack{}, err
	}
	if cfg.HighPriorityFraction > 0 {
		gen.HighFrac = cfg.HighPriorityFraction
	}
	st := runner.Stack{
		Eng: eng, Gen: gen,
		PercentileSamples: cfg.PercentileSamples,
		Seed:              cfg.Seed,
	}
	// An SLO or shedding config is judged by per-class tails: without
	// sampling, Report.HighP95/LowP95 would read 0 while the controller
	// steers on real percentiles. Default the sampling on.
	if st.PercentileSamples == 0 && (cfg.SLO != nil || cfg.AdmitDeadline != nil) {
		st.PercentileSamples = 2048
	}
	if cfg.SLO != nil {
		rs, err := cfg.SLO.spec()
		if err != nil {
			return runner.Stack{}, err
		}
		st.SLO = &rs
	}
	if n := cfg.Shards.Count; n > 0 {
		// Sharded: n identical DBMS+frontend pairs (per-shard queue
		// policy instances — they are stateful) behind one dispatcher.
		// makeShard also serves scenario shard_add events, which grow
		// the fleet mid-run with index-seeded nominal-speed members.
		makeShard := func(i int, speed float64) (cluster.Shard, error) {
			sdbo := dbo
			sdbo.CPUSpeed = speed
			sdbo.Seed = cluster.ShardSeed(cfg.Seed, i)
			// In a parallel run the shard's whole frontend+backend pair
			// schedules on its own member engine, started at the
			// coordinator's current instant (mid-run shard_add events
			// build shards at t > 0).
			seng := eng
			if parallel {
				seng = sim.NewEngine()
				seng.AdvanceTo(eng.Now())
			}
			db, err := dbms.New(seng, s.setup.BuildConfig(sdbo))
			if err != nil {
				return cluster.Shard{}, err
			}
			policy, err := core.NewPolicy(cfg.Policy, wfqWeights)
			if err != nil {
				return cluster.Shard{}, err
			}
			fe := dbfe.New(seng, db, 0, policy)
			if cfg.QueueLimit > 0 {
				fe.SetQueueLimit(cfg.QueueLimit)
			}
			if ad := cfg.AdmitDeadline; ad != nil {
				fe.SetAdmitDeadline(core.ClassHigh, ad.High)
				fe.SetAdmitDeadline(core.ClassLow, ad.Low)
			}
			workload.Prewarm(db, s.setup.Workload, sdbo.Seed)
			sh := cluster.Shard{FE: fe, DB: db, Speed: speed}
			if parallel {
				sh.Eng = seng
			}
			return sh, nil
		}
		shards := make([]cluster.Shard, n)
		for i := range shards {
			speed := 1.0
			if len(cfg.Shards.Speeds) > 0 {
				speed = cfg.Shards.Speeds[i]
			}
			sh, err := makeShard(i, speed)
			if err != nil {
				return runner.Stack{}, err
			}
			shards[i] = sh
		}
		dp, err := cluster.NewPolicySeeded(cfg.Shards.Dispatch, cfg.Seed)
		if err != nil {
			return runner.Stack{}, err
		}
		disp, err := cluster.NewDispatcher(dp, shards)
		if err != nil {
			return runner.Stack{}, err
		}
		disp.SetMPL(mpl)
		st.Cluster = disp
		st.NewShard = func(i int) (cluster.Shard, error) { return makeShard(i, 1) }
		if parallel {
			engs := make([]*sim.Engine, len(shards))
			for i := range shards {
				engs[i] = shards[i].Eng
			}
			pe := sim.NewParallelEngine(eng, engs, disp)
			if err := disp.EnableParallel(pe); err != nil {
				pe.Close()
				return runner.Stack{}, err
			}
			st.Par = pe
		}
		rp := cluster.RecoveryPolicy{Seed: cfg.Seed}
		if r := cfg.Recovery; r != nil {
			rp.Resubmit = r.Mode == RecoveryResubmit
			rp.RetryBudget = r.RetryBudget
			rp.BackoffBase = r.BackoffBase
			rp.BackoffCap = r.BackoffCap
		}
		st.Recovery = &rp
		return st, nil
	}
	db, err := dbms.New(eng, s.setup.BuildConfig(dbo))
	if err != nil {
		return runner.Stack{}, err
	}
	policy, err := core.NewPolicy(cfg.Policy, wfqWeights)
	if err != nil {
		return runner.Stack{}, err
	}
	fe := dbfe.New(eng, db, mpl, policy)
	if cfg.QueueLimit > 0 {
		fe.SetQueueLimit(cfg.QueueLimit)
	}
	if cl := cfg.ClassLimits; cl != nil {
		fe.SetClassLimits(map[core.Class]int{core.ClassHigh: cl.High, core.ClassLow: cl.Low})
	}
	if ad := cfg.AdmitDeadline; ad != nil {
		fe.SetAdmitDeadline(core.ClassHigh, ad.High)
		fe.SetAdmitDeadline(core.ClassLow, ad.Low)
	}
	workload.Prewarm(db, s.setup.Workload, cfg.Seed)
	st.DB, st.FE = db, fe
	return st, nil
}

// Report summarizes one measurement window. The windowing rule is
// uniform across all run styles: the window opens when warmup ends and
// closes when the scenario's last phase elapses, and a completion
// counts if and only if it lands inside the window — work still in
// flight at the close is excluded, and nothing completing later can
// pollute the numbers.
type Report struct {
	SimSeconds    float64
	Completed     uint64
	Throughput    float64 // transactions/second
	MeanRT        float64 // overall mean response time (s)
	HighRT        float64 // high-priority class mean RT (s)
	LowRT         float64 // low-priority class mean RT (s)
	MeanInside    float64 // mean time inside the DBMS (s)
	ExternalW     float64 // mean external queue wait (s)
	Restarts      uint64  // abort/restart cycles observed
	CPUUtil       float64
	DiskUtil      float64
	DemandC2      float64 // measured C² of the time spent inside the DBMS
	LockWaits     uint64
	Deadlocks     uint64
	Preemptions   uint64
	Dropped       uint64  // admission-control rejections (QueueLimit mode)
	Shed          uint64  // deadline-missed rejections (AdmitDeadline mode)
	ShedHigh      uint64  // high-class share of Shed
	ShedLow       uint64  // low-class share of Shed
	Failed        uint64  // txns terminally lost to shard failures
	Resubmitted   uint64  // logical txns re-routed to a survivor at least once
	Retries       uint64  // resubmission events (one txn can retry several times)
	P50, P95, P99 float64 // response-time percentiles (PercentileSamples mode)
	HighP95       float64 // high-class p95 (PercentileSamples mode) — the SLO signal
	LowP95        float64 // low-class p95 (PercentileSamples mode)
	// Classes is the per-tenant breakdown of the window, in ascending
	// class-ID order: one entry per class that completed or shed work.
	// The N-tenant generalization of the High/Low fields above (which
	// remain for two-class runs).
	Classes []ClassResult
}

// RunClosed drives the system with a fixed client population (the
// paper's closed system; clients <= 0 means its 100) for measure
// simulated seconds after warmup seconds of warm-up. It is a one-phase
// Scenario; the System is reusable afterwards.
func (s *System) RunClosed(clients int, warmup, measure float64) (Report, error) {
	if clients < 0 {
		clients = 0
	}
	res, err := s.Run(context.Background(), Scenario{
		Warmup: warmup,
		Phases: []Phase{{Kind: PhaseClosed, Clients: clients, Duration: measure}},
	})
	return res.Total, err
}

// RunOpen drives the system with Poisson arrivals at rate lambda. Like
// every run, it reports exactly the measure-second window: work still
// queued or executing when the window closes is not counted.
func (s *System) RunOpen(lambda, warmup, measure float64) (Report, error) {
	res, err := s.Run(context.Background(), Scenario{
		Warmup: warmup,
		Phases: []Phase{{Kind: PhaseOpen, Lambda: lambda, Duration: measure}},
	})
	return res.Total, err
}

// SetMPL changes the MPL: of the executing run when called from an
// observer callback mid-run, otherwise of the configuration the next
// run starts from. On a sharded system the value is the cluster-wide
// limit.
func (s *System) SetMPL(mpl int) {
	if st := s.cur; st != nil {
		st.Gate().SetMPL(mpl)
		return
	}
	s.cfg.MPL = mpl
}

// MPL returns the current limit: the executing run's live value
// mid-run, the configured starting value otherwise.
func (s *System) MPL() int {
	if st := s.cur; st != nil {
		return st.Gate().MPL()
	}
	return s.cfg.MPL
}

// Setup describes the resolved Table 2 setup.
func (s *System) Setup() string { return s.setup.String() }

// AutoTune runs the Section 4.3 controller against this system under a
// closed workload until convergence (or until horizon simulated
// seconds elapse). maxLoss is the DBA's acceptable throughput loss
// (e.g. 0.05); referenceTput the no-MPL optimum (measure it with an
// unlimited run, or use RecommendMPL's model). It is a one-phase
// scenario: the queueing models pick the starting MPL, an event at the
// window's start hands control to the feedback loop, and the run stops
// at convergence.
func (s *System) AutoTune(clients int, maxLoss, referenceTput, horizon float64) (TuneResult, error) {
	cpuD, ioD := s.setup.Demands()
	start, err := controller.JumpStart(controller.JumpStartInput{
		CPUs: s.setup.CPUs, Disks: s.setup.Disks,
		CPUDemand: cpuD, IODemand: ioD,
		DiskCV2:            s.setup.Workload.DiskService.C2(),
		ThroughputFraction: 1 - maxLoss,
	})
	if err != nil {
		return TuneResult{}, err
	}
	if clients < 0 {
		clients = 0
	}
	warm := horizon / 20
	res, err := s.runScenario(context.Background(), Scenario{
		Warmup:         warm,
		SampleInterval: horizon / 40, // convergence-check granularity
		Phases: []Phase{{
			Kind: PhaseClosed, Clients: clients, Duration: horizon - warm,
			Events: []Event{{EnableController: &ControllerSpec{
				MaxThroughputLoss:   maxLoss,
				ReferenceThroughput: referenceTput,
				StopOnConverge:      true,
			}}},
		}},
	}, &start)
	if err != nil {
		return TuneResult{}, err
	}
	if res.Tune == nil {
		return TuneResult{}, fmt.Errorf("extsched: controller never engaged")
	}
	return *res.Tune, nil
}

// Recommendation is the output of the pure-model MPL tool.
type Recommendation struct {
	// ThroughputMPL is the Section 4.1 MVA bound: the lowest MPL
	// keeping throughput within the loss tolerance.
	ThroughputMPL int
	// ResponseTimeMPL is the Section 4.2 QBD bound (0 when no open-
	// system load was specified).
	ResponseTimeMPL int
	// MPL is the recommendation: the max of the two bounds.
	MPL int
}

// RecommendMPL runs the paper's analytic tool without any simulation:
// given hardware shape, per-transaction demands, and tolerances, it
// returns the lowest MPL the queueing models consider safe.
// lambda/meanDemand/demandC2 describe the open-system load for the
// response-time bound; pass zeros to skip it.
func RecommendMPL(cpus, disks int, cpuDemand, ioDemand, maxTputLoss float64,
	lambda, meanDemand, demandC2, maxRTIncrease float64) (Recommendation, error) {
	nw, err := mva.Balanced(cpus, disks, cpuDemand, ioDemand)
	if err != nil {
		return Recommendation{}, err
	}
	rec := Recommendation{ThroughputMPL: nw.MinMPLForFraction(1-maxTputLoss, 500)}
	rec.MPL = rec.ThroughputMPL
	if lambda > 0 && meanDemand > 0 && demandC2 > 1 {
		if rho := lambda * meanDemand; rho < 1 {
			tol := maxRTIncrease
			if tol <= 0 {
				tol = 0.1
			}
			m, err := qbd.MinMPLForResponseTime(lambda, dist.FitH2(meanDemand, demandC2), tol, 200)
			if err != nil {
				return Recommendation{}, err
			}
			rec.ResponseTimeMPL = m
			if m > rec.MPL {
				rec.MPL = m
			}
		}
	}
	return rec, nil
}

// Setups lists the paper's Table 2 setups as display strings.
func Setups() []string {
	var out []string
	for _, s := range workload.Table2() {
		out = append(out, s.String())
	}
	return out
}

// Workloads lists the paper's Table 1 workload names.
func Workloads() []string {
	var out []string
	for _, s := range workload.Table1() {
		out = append(out, s.Name)
	}
	return out
}

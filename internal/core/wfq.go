package core

import (
	"container/heap"
	"math"
)

// WFQPolicy implements start-time fair queueing over priority classes:
// each class receives external-queue dispatch capacity in proportion
// to its weight, measured in estimated service demand. It generalizes
// the paper's two-class priority experiment to the class-based QoS
// sharing of the authors' companion work (Schroeder et al., "Achieving
// class-based QoS for transactional workloads", ICDE'06 [22]): strict
// priority starves the low class under backlog, WFQ guarantees it a
// configurable fraction.
//
// Tags follow SFQ: an item's start tag is max(global virtual time, its
// class's last finish tag); its finish tag adds size/weight. Dispatch
// order is by start tag (ties by arrival), and the global virtual time
// advances to the dispatched start tag.
type WFQPolicy struct {
	weights map[Class]float64
	vtime   float64
	classF  map[Class]float64
	q       wfqHeap
}

// wfqItem decorates a queued item with its tags.
type wfqItem struct {
	item  *Item
	start float64
	seq   uint64
}

type wfqHeap []wfqItem

func (h wfqHeap) Len() int { return len(h) }
func (h wfqHeap) Less(i, j int) bool {
	if h[i].start != h[j].start {
		return h[i].start < h[j].start
	}
	return h[i].seq < h[j].seq
}
func (h wfqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wfqHeap) Push(x any)   { *h = append(*h, x.(wfqItem)) }
func (h *wfqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewWFQ builds the policy with per-class weights (> 0). Classes
// absent from the map default to weight 1.
func NewWFQ(weights map[Class]float64) *WFQPolicy {
	w := make(map[Class]float64, len(weights))
	for c, v := range weights {
		if v <= 0 {
			panic("core: WFQ weights must be positive")
		}
		w[c] = v
	}
	return &WFQPolicy{weights: w, classF: make(map[Class]float64)}
}

func (p *WFQPolicy) Name() string { return "wfq" }

// SetWeights replaces the per-class weights (> 0; classes absent from
// the map revert to weight 1). Future charges use the new weights;
// tags already assigned to queued items stand, so the change takes
// effect over roughly one queue's worth of arrivals rather than
// reshuffling the backlog.
func (p *WFQPolicy) SetWeights(weights map[Class]float64) {
	w := make(map[Class]float64, len(weights))
	for c, v := range weights {
		if v <= 0 {
			panic("core: WFQ weights must be positive")
		}
		w[c] = v
	}
	p.weights = w
}

func (p *WFQPolicy) weight(c Class) float64 {
	if w, ok := p.weights[c]; ok {
		return w
	}
	return 1
}

// charge is the virtual-time cost an item adds to its class's finish
// tag: size over weight, unknown sizes costing one unit.
func (p *WFQPolicy) charge(it *Item) float64 {
	size := it.SizeHint
	if size <= 0 {
		size = 1 // unknown sizes get unit cost
	}
	return size / p.weight(it.Class)
}

// Push tags the item and enqueues it.
func (p *WFQPolicy) Push(it *Item) {
	c := it.Class
	start := math.Max(p.vtime, p.classF[c])
	p.classF[c] = start + p.charge(it)
	heap.Push(&p.q, wfqItem{item: it, start: start, seq: it.seq})
}

// discarded refunds a canceled item's enqueue-time charge, clamped to
// the global virtual time, so a class whose callers cancel (timeouts
// under saturation) does not permanently forfeit its weighted share of
// future dispatches. The clamp keeps start tags valid; in the rare
// case a same-class item was pushed after the canceled one, its
// already-assigned later tag stands (a one-item ordering wrinkle, not
// a share leak).
func (p *WFQPolicy) discarded(it *Item) {
	c := it.Class
	p.classF[c] = math.Max(p.vtime, p.classF[c]-p.charge(it))
}

// compact drops queued items failing keep and restores the heap.
func (p *WFQPolicy) compact(keep func(*Item) bool) {
	kept := p.q[:0]
	for _, wi := range p.q {
		if keep(wi.item) {
			kept = append(kept, wi)
		}
	}
	for i := len(kept); i < len(p.q); i++ {
		p.q[i] = wfqItem{}
	}
	p.q = kept
	heap.Init(&p.q)
}

// Pop dispatches the item with the smallest start tag and advances the
// virtual clock.
func (p *WFQPolicy) Pop() *Item {
	if p.q.Len() == 0 {
		return nil
	}
	it := heap.Pop(&p.q).(wfqItem)
	if it.start > p.vtime {
		p.vtime = it.start
	}
	return it.item
}

func (p *WFQPolicy) Len() int { return p.q.Len() }

// Command benchcheck is the bench-regression gate: it re-measures the
// repository's tracked performance metrics — kernel microbenchmarks
// (ns/op and allocs/op, including the conservative parallel engine's
// per-window overhead, whose hot path must stay allocation-free),
// live-gate overhead (serial plus RunParallel
// contention sweeps at GOMAXPROCS 2/4/8, and the Pool fast path),
// dispatch-policy pick cost at fleet sizes 8 and 1000 (the sampled
// "jsq-d" path must stay allocation-free and flat in N), and the
// deterministic summary numbers of the fig7, dispatch, slo, churn,
// autoscale and fairness figures — and compares
// them against the committed BENCH_baseline.json with per-metric
// tolerances. Any regression exits nonzero, which is what lets CI
// refuse a PR that slows a hot path or silently changes a figure.
//
//	benchcheck                                  # compare against BENCH_baseline.json
//	benchcheck -out BENCH_current.json          # also write the fresh measurements
//	benchcheck -update                          # re-baseline (when a speedup lands,
//	                                            # commit the refreshed file in the same PR)
//
// Two metric families behave differently:
//
//   - wall-time metrics (kind "time", direction lower-is-better) vary
//     with the host; their tolerances are wide (default 25%) so only a
//     real slowdown — the acceptance bar is catching a 30% one — trips
//     them, and re-baselining on new hardware is expected;
//   - alloc counts and figure summaries (kinds "allocs", "value") are
//     hardware-independent: allocs tolerate zero drift, figure values
//     a small band (they are deterministic given the seed, so drift
//     means the simulation's behavior changed).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"extsched/gate"
	"extsched/internal/cluster"
	"extsched/internal/experiments"
	"extsched/internal/sim"
)

// Metric is one tracked measurement.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Kind is "time" (ns/op, host-dependent), "allocs" (allocs/op), or
	// "value" (deterministic figure summary).
	Kind string `json:"kind"`
	// Tolerance is the allowed relative drift (e.g. 0.25 = 25%). For
	// "time" and "allocs" only increases count against it
	// (lower-is-better); for "value" any drift does.
	Tolerance float64 `json:"tolerance"`
}

// Baseline is the committed reference file.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note    string   `json:"note,omitempty"`
	Metrics []Metric `json:"metrics"`
}

func defaultTolerance(kind string) float64 {
	switch kind {
	case "time":
		return 0.25
	case "allocs":
		return 0
	default:
		return 0.10
	}
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
		outPath      = flag.String("out", "", "write the fresh measurements to this file")
		update       = flag.Bool("update", false, "rewrite the baseline from the fresh measurements (keeps existing per-metric tolerances)")
		timeTol      = flag.Float64("time-tolerance", 0, "override the tolerance of every \"time\"-kind metric (0 = use the baseline's). CI runs on whatever hardware it gets, so it widens these; local runs keep the strict per-metric values")
	)
	flag.Parse()

	fresh, err := measure()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if *outPath != "" {
		if err := writeBaseline(*outPath, Baseline{Note: baselineNote, Metrics: fresh}); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
	}
	if *update {
		// Preserve hand-tuned tolerances for metrics that already exist.
		if old, err := readBaseline(*baselinePath); err == nil {
			tol := make(map[string]float64, len(old.Metrics))
			for _, m := range old.Metrics {
				tol[m.Name] = m.Tolerance
			}
			for i := range fresh {
				if t, ok := tol[fresh[i].Name]; ok {
					fresh[i].Tolerance = t
				}
			}
		}
		if err := writeBaseline(*baselinePath, Baseline{Note: baselineNote, Metrics: fresh}); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		fmt.Printf("benchcheck: wrote %d metrics to %s\n", len(fresh), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if *timeTol > 0 {
		for i := range base.Metrics {
			if base.Metrics[i].Kind == "time" {
				base.Metrics[i].Tolerance = *timeTol
			}
		}
	}
	os.Exit(compare(base.Metrics, fresh))
}

const baselineNote = "regenerate with: go run ./cmd/benchcheck -update (see EXPERIMENTS.md for when re-baselining is legitimate)"

// compare reports PASS/FAIL per metric and returns the exit code.
func compare(base, fresh []Metric) int {
	cur := make(map[string]Metric, len(fresh))
	for _, m := range fresh {
		cur[m.Name] = m
	}
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })
	code := 0
	fmt.Printf("%-40s %14s %14s %9s  %s\n", "metric", "baseline", "current", "drift", "verdict")
	for _, b := range base {
		c, ok := cur[b.Name]
		if !ok {
			fmt.Printf("%-40s %14.4g %14s %9s  FAIL (metric no longer measured)\n", b.Name, b.Value, "-", "-")
			code = 1
			continue
		}
		drift := 0.0
		if b.Value != 0 {
			drift = (c.Value - b.Value) / math.Abs(b.Value)
		} else if c.Value != 0 {
			drift = math.Inf(1)
		}
		bad := false
		switch b.Kind {
		case "time", "allocs":
			bad = drift > b.Tolerance
		default: // "value": deterministic — drift either way is a change
			bad = math.Abs(drift) > b.Tolerance
		}
		verdict := "ok"
		if bad {
			verdict = "FAIL"
			code = 1
		} else if b.Kind == "time" && drift < -b.Tolerance {
			verdict = "ok (improved — consider -update)"
		}
		fmt.Printf("%-40s %14.4g %14.4g %8.1f%%  %s\n", b.Name, b.Value, c.Value, drift*100, verdict)
	}
	for _, m := range fresh {
		found := false
		for _, b := range base {
			if b.Name == m.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-40s %14s %14.4g %9s  new metric (not in baseline; run -update)\n", m.Name, "-", m.Value, "-")
		}
	}
	if code != 0 {
		fmt.Println("benchcheck: REGRESSION against", "baseline")
	}
	return code
}

// measure runs every tracked measurement.
func measure() ([]Metric, error) {
	var out []Metric
	add := func(name, kind string, value float64) {
		out = append(out, Metric{Name: name, Value: value, Kind: kind, Tolerance: defaultTolerance(kind)})
	}

	// Kernel: one event scheduled and fired per op against a standing
	// population (the repository-root BenchmarkEngineSchedule).
	r := testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		fn := func() {}
		for i := 0; i < 1024; i++ {
			eng.After(float64(i)+0.5, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.After(0.25, fn)
			eng.Step()
		}
	})
	add("kernel/engine_schedule/ns_op", "time", float64(r.NsPerOp()))
	add("kernel/engine_schedule/allocs_op", "allocs", float64(r.AllocsPerOp()))

	// Kernel: schedule→cancel→discard (free-list recycling path).
	r = testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := eng.After(1, fn)
			eng.Cancel(h)
			eng.Run(eng.Now())
		}
	})
	add("kernel/engine_schedule_cancel/ns_op", "time", float64(r.NsPerOp()))
	add("kernel/engine_schedule_cancel/allocs_op", "allocs", float64(r.AllocsPerOp()))

	// Parallel kernel: one conservative window per op — 4 member event
	// chains plus a coordinator tick, workers handed off through the
	// fixed pool (the internal/sim BenchmarkParallelWindowEvent shape).
	// The intra-window hot path must stay allocation-free: the kernel
	// free lists, the parked worker pool, and the reused mailboxes mean
	// steady state allocates nothing, and allocs/op pins that at 0. The
	// time metric keeps the wide "time" tolerance — on a 1-core runner
	// the worker handoffs timeslice instead of overlapping, so ns/op
	// measures sync overhead there, not speedup.
	r = testing.Benchmark(func(b *testing.B) {
		coord := sim.NewEngine()
		members := make([]*sim.Engine, 4)
		for i := range members {
			m := sim.NewEngine()
			members[i] = m
			var chain func()
			chain = func() { m.After(0.001, chain) }
			m.After(0.001, chain)
		}
		var tick func()
		tick = func() { coord.After(0.05, tick) }
		coord.After(0.05, tick)
		pe := sim.NewParallelEngine(coord, members, nullWindowSource{})
		defer pe.Close()
		pe.Run(1) // warm the free lists and the window machinery
		bound := coord.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bound += 0.05
			pe.Run(bound)
		}
	})
	add("kernel/parallel_window/ns_op", "time", float64(r.NsPerOp()))
	add("kernel/parallel_window/allocs_op", "allocs", float64(r.AllocsPerOp()))

	// Live gate: the uncontended Acquire/Release hot path (gate
	// BenchmarkGateAcquireRelease, single-goroutine so the number is
	// the pure per-call overhead).
	g, err := gate.New(gate.Config{})
	if err != nil {
		return nil, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tk, err := g.Acquire(ctx)
			if err != nil {
				b.Fatal(err)
			}
			tk.Release(gate.Result{})
		}
	})
	add("gate/acquire_release/ns_op", "time", float64(r.NsPerOp()))
	add("gate/acquire_release/allocs_op", "allocs", float64(r.AllocsPerOp()))

	// Live gate under contention: the same uncontended-admission path
	// driven from N goroutines on N procs (gate
	// BenchmarkGateAcquireReleaseParallel at -cpu 2,4,8). On a 1-core
	// runner the goroutines timeslice, so ns/op is not a scaling
	// number there — but allocs/op must still be exactly 0, and a
	// gross slowdown (a lock sneaking back onto the fast path) still
	// trips the wide time tolerance.
	prev := runtime.GOMAXPROCS(0)
	for _, n := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(n)
		gp, err := gate.New(gate.Config{})
		if err != nil {
			runtime.GOMAXPROCS(prev)
			return nil, err
		}
		r = testing.Benchmark(func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					tk, err := gp.Acquire(ctx)
					if err != nil {
						b.Error(err)
						return
					}
					tk.Release(gate.Result{})
				}
			})
		})
		add(fmt.Sprintf("gate/acquire_release_parallel_cpu%d/ns_op", n), "time", float64(r.NsPerOp()))
		add(fmt.Sprintf("gate/acquire_release_parallel_cpu%d/allocs_op", n), "allocs", float64(r.AllocsPerOp()))
	}

	// Pool fast path: routing (one short mutexed pick) plus the member
	// gate's lock-free admission, 4 members round-robin on 4 procs.
	runtime.GOMAXPROCS(4)
	pl, err := gate.NewPool(gate.PoolConfig{Members: 4, Dispatch: "rr"})
	if err != nil {
		runtime.GOMAXPROCS(prev)
		return nil, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tk, err := pl.Acquire(ctx)
				if err != nil {
					b.Error(err)
					return
				}
				tk.Release(gate.Result{})
			}
		})
	})
	runtime.GOMAXPROCS(prev)
	add("gate/pool_acquire_release_parallel_cpu4/ns_op", "time", float64(r.NsPerOp()))
	add("gate/pool_acquire_release_parallel_cpu4/allocs_op", "allocs", float64(r.AllocsPerOp()))

	// Dispatch pick cost: the per-transaction routing decision at fleet
	// sizes 8 and 1000 for full-scan jsq versus sampled jsq-d. The
	// sampled path is what makes thousand-shard fleets tractable, so it
	// must stay allocation-free, and its N=1000 cost within 2x of its
	// N=8 cost (the scaling ratio metric carries a hand-tuned tolerance
	// of 1.0: it only fails when the ratio doubles, i.e. the pick cost
	// stops being flat in N).
	pickCost := func(policyName string, n int) (nsOp, allocsOp float64, err error) {
		p, err := cluster.NewPolicySeeded(policyName, 1)
		if err != nil {
			return 0, 0, err
		}
		loads := make([]cluster.Load, n)
		for i := range loads {
			loads[i] = cluster.Load{Backlog: (i * 7) % 13, Work: float64((i * 5) % 11), Speed: 1}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := p.Pick(loads, 0, 1)
				loads[j].Backlog++
				loads[(i+j)%n].Backlog--
			}
		})
		return float64(r.NsPerOp()), float64(r.AllocsPerOp()), nil
	}
	var sampledNs [2]float64
	for i, n := range []int{8, 1000} {
		ns, _, err := pickCost("jsq", n)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("dispatch_pick/jsq_n%d/ns_op", n), "time", ns)
		ns, allocs, err := pickCost("jsq-d:3", n)
		if err != nil {
			return nil, err
		}
		sampledNs[i] = ns
		add(fmt.Sprintf("dispatch_pick/jsq-d_n%d/ns_op", n), "time", ns)
		add(fmt.Sprintf("dispatch_pick/jsq-d_n%d/allocs_op", n), "allocs", allocs)
	}
	out = append(out, Metric{
		Name:      "dispatch_pick/jsq-d_n1000_vs_n8_ratio",
		Value:     sampledNs[1] / sampledNs[0],
		Kind:      "time",
		Tolerance: 1.0,
	})

	// Figure summaries: deterministic given the seed, so drift means
	// the simulation's behavior changed, not the host.
	opts := experiments.RunOpts{Warmup: 20, Measure: 120, Seed: 1}
	fig7, err := experiments.Figure7()
	if err != nil {
		return nil, err
	}
	addFigure(&out, fig7)
	dispatch, err := experiments.DispatchFigure(3, 0.25, opts)
	if err != nil {
		return nil, err
	}
	addFigure(&out, dispatch)
	slo, err := experiments.SLOFigure(3, 0, opts)
	if err != nil {
		return nil, err
	}
	addFigure(&out, slo)
	churn, err := experiments.ChurnFigure(3, opts)
	if err != nil {
		return nil, err
	}
	addFigure(&out, churn)
	autoscale, err := experiments.AutoscaleFigure(3, opts)
	if err != nil {
		return nil, err
	}
	addFigure(&out, autoscale)
	fair, err := experiments.FairnessFigure(2, opts)
	if err != nil {
		return nil, err
	}
	addFigure(&out, fair)
	return out, nil
}

// nullWindowSource is the no-op cross-engine boundary for the parallel
// kernel benchmark (no messages flow; the metric is pure window cost).
type nullWindowSource struct{}

func (nullWindowSource) BeginWindows()     {}
func (nullWindowSource) Flush(float64) int { return 0 }
func (nullWindowSource) EndWindows()       {}

// addFigure folds each series of a figure into one tracked mean.
func addFigure(out *[]Metric, f *experiments.Figure) {
	for _, s := range f.Series {
		if len(s.Y) == 0 {
			continue
		}
		sum := 0.0
		for _, y := range s.Y {
			sum += y
		}
		*out = append(*out, Metric{
			Name:      fmt.Sprintf("%s/%s/mean", f.ID, sanitize(s.Name)),
			Value:     sum / float64(len(s.Y)),
			Kind:      "value",
			Tolerance: defaultTolerance("value"),
		})
	}
}

// sanitize makes a series name metric-friendly.
func sanitize(name string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", "/", "-", ",", "")
	return r.Replace(name)
}

func readBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return b, nil
}

func writeBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Conservative-parallel operation of the dispatcher.
//
// In a parallel run each shard's frontend+backend pair lives on its
// own member engine (Shard.Eng) while the dispatcher, drivers and
// runner timers stay on the coordinator engine. The dispatcher is the
// message boundary between the two sides, in both directions:
//
//   - coordinator → member: a routed submission cannot touch the
//     member frontend directly mid-window (the member clock may be
//     ahead of the coordinator's instant), so submitTo builds the Txn
//     and injects its delivery as a member event at the coordinator's
//     current time — always legal, because coordinator events fire
//     only on window bounds, where every member clock stands;
//
//   - member → coordinator: frontend hook firings (completion wrapper,
//     cluster OnComplete/OnDrop/OnShed) would mutate coordinator-side
//     state (work ledger, runner accumulators, closed-loop client
//     callbacks) from worker goroutines at member-local times, so
//     during windows they are buffered into per-shard mailboxes and
//     replayed by Flush in global (timestamp, shard, FIFO) order, with
//     the coordinator clock advanced to each message's timestamp —
//     reproducing the exact sequence of side effects a sequential run
//     interleaves inline.
//
// Anything that must read live member state at the hook instant and
// cannot wait for replay — today only the "did the drain just finish?"
// emptiness check — is captured member-side into the message, so the
// replay decides from the state as it was when the hook fired, not as
// it is at flush time.
//
// Outside ParallelEngine.Run (scenario breakpoints, driver start), all
// clocks stand at one instant and only the coordinator goroutine is
// active, so the hooks fall through to their sequential inline bodies
// and lifecycle operations (FailShard, SetMPL, drains) behave exactly
// as in a sequential run.
package cluster

import (
	"fmt"

	"extsched/internal/dbfe"
	"extsched/internal/sim"
)

// parMsg kinds, in the roles the sequential hook bodies play.
const (
	// parDone is the per-txn completion wrapper (work-ledger settle +
	// the submitter's own callback).
	parDone uint8 = iota
	// parComplete is the frontend-wide completion hook (runner
	// observation + drain-finish check).
	parComplete
	// parDrop is an admission-control rejection (settle + routing
	// refund + runner observation).
	parDrop
	// parShed is a deadline shed (drain-finish check; the shed txn's
	// own done callback is a separate parDone message).
	parShed
)

// parMsg is one buffered member→coordinator hook firing.
type parMsg struct {
	at   float64
	kind uint8
	t    *dbfe.Txn
	// empty captures "Inside()==0 && QueueLen()==0" at the instant the
	// hook fired on the member — the member may have moved on by
	// replay time, but a drain finishes (or doesn't) based on the
	// state at the completion/shed instant, exactly as sequentially.
	empty bool
}

// parState is the dispatcher's parallel-mode side table (nil in
// sequential mode). All per-shard slices are index-parallel to
// Dispatcher.shards.
type parState struct {
	pe    *sim.ParallelEngine
	coord *sim.Engine
	// inWindow is true between BeginWindows and EndWindows — while
	// member windows may be running and hook effects must be buffered.
	// It is toggled only on the coordinator goroutine with the workers
	// parked; the worker-side reads are ordered by the pool's channel
	// barriers.
	inWindow bool
	// boxes/cur are the member→coordinator mailboxes (appended by the
	// shard's worker during windows, drained by Flush) and their read
	// cursors.
	boxes [][]parMsg
	cur   []int
	// inbox/inCur hold routed-but-undelivered submissions per shard
	// (appended by the coordinator, consumed FIFO by the shard's
	// injected delivery events); deliver caches one delivery closure
	// per shard so injections allocate nothing per send.
	inbox   [][]*dbfe.Txn
	inCur   []int
	deliver []func()
}

// EnableParallel switches the dispatcher to conservative-parallel
// operation over pe's member engines. Every shard must have been built
// on its own engine (Shard.Eng set, FE and DB scheduling there). Call
// once, after NewDispatcher and before any traffic flows; the shard
// hooks are re-installed in their buffering form.
func (d *Dispatcher) EnableParallel(pe *sim.ParallelEngine) error {
	if d.par != nil {
		return fmt.Errorf("cluster: parallel mode already enabled")
	}
	if pe == nil {
		return fmt.Errorf("cluster: EnableParallel needs a parallel engine")
	}
	for i := range d.shards {
		if d.shards[i].Eng == nil {
			return fmt.Errorf("cluster: shard %d has no member engine", i)
		}
	}
	n := len(d.shards)
	d.par = &parState{
		pe:      pe,
		coord:   pe.Coordinator(),
		boxes:   make([][]parMsg, n),
		cur:     make([]int, n),
		inbox:   make([][]*dbfe.Txn, n),
		inCur:   make([]int, n),
		deliver: make([]func(), n),
	}
	for i := range d.shards {
		i := i
		d.par.deliver[i] = func() { d.deliverNext(i) }
		d.installHooks(i)
	}
	return nil
}

// grow extends the parallel side table for a shard just appended at
// index i (AddShard) and registers its engine with the ensemble.
func (p *parState) grow(d *Dispatcher, i int) {
	p.boxes = append(p.boxes, nil)
	p.cur = append(p.cur, 0)
	p.inbox = append(p.inbox, nil)
	p.inCur = append(p.inCur, 0)
	p.deliver = append(p.deliver, func() { d.deliverNext(i) })
	p.pe.AddMember(d.shards[i].Eng)
}

// shardIdle reports whether shard i holds no work right now (the
// drain-finish predicate), read member-side at hook time.
func (d *Dispatcher) shardIdle(i int) bool {
	fe := d.shards[i].FE
	return fe.Inside() == 0 && fe.QueueLen() == 0
}

// installParHooks is installHooks' parallel-mode body: during windows
// the hooks buffer into shard i's mailbox at the member clock's
// current time; outside windows they fall through to the sequential
// inline behavior (all clocks equal, coordinator goroutine only).
func (d *Dispatcher) installParHooks(i int) {
	fe := d.shards[i].FE
	meng := d.shards[i].Eng
	d.doneFn[i] = func(t *dbfe.Txn) {
		if !d.par.inWindow {
			d.settle(i, t.Item.SizeHint)
			if t.UserCB != nil {
				t.UserCB(t)
			}
			return
		}
		d.par.boxes[i] = append(d.par.boxes[i], parMsg{at: meng.Now(), kind: parDone, t: t})
	}
	fe.OnComplete = func(t *dbfe.Txn) {
		if !d.par.inWindow {
			if d.OnComplete != nil {
				d.OnComplete(i, t)
			}
			d.maybeFinishDrain(i)
			return
		}
		d.par.boxes[i] = append(d.par.boxes[i], parMsg{at: meng.Now(), kind: parComplete, t: t, empty: d.shardIdle(i)})
	}
	fe.OnDrop = func(t *dbfe.Txn) {
		if !d.par.inWindow {
			d.settle(i, t.Item.SizeHint)
			d.routed[i]--
			if d.OnDrop != nil {
				d.OnDrop(i, t)
			}
			return
		}
		d.par.boxes[i] = append(d.par.boxes[i], parMsg{at: meng.Now(), kind: parDrop, t: t})
	}
	fe.OnShed = func(t *dbfe.Txn) {
		if !d.par.inWindow {
			d.maybeFinishDrain(i)
			return
		}
		d.par.boxes[i] = append(d.par.boxes[i], parMsg{at: meng.Now(), kind: parShed, t: t, empty: d.shardIdle(i)})
	}
}

// deliverNext performs one deferred submission on shard i — the body
// of the injected member event. Injections and deliveries are both
// FIFO per shard, so the head of the inbox is always the right txn.
func (d *Dispatcher) deliverNext(i int) {
	p := d.par
	c := p.inCur[i]
	t := p.inbox[i][c]
	p.inbox[i][c] = nil
	p.inCur[i] = c + 1
	if p.inCur[i] == len(p.inbox[i]) {
		p.inbox[i] = p.inbox[i][:0]
		p.inCur[i] = 0
	}
	d.shards[i].FE.Deliver(t)
}

// BeginWindows implements sim.MessageSource: member windows may run
// from here on, so hook effects must buffer.
func (d *Dispatcher) BeginWindows() {
	if d.par != nil {
		d.par.inWindow = true
	}
}

// EndWindows implements sim.MessageSource: the parallel Run returned;
// hooks act inline again.
func (d *Dispatcher) EndWindows() {
	if d.par != nil {
		d.par.inWindow = false
	}
}

// Flush implements sim.MessageSource: deliver every buffered
// member→coordinator message in global (timestamp, shard index,
// per-shard FIFO) order, advancing the coordinator clock to each
// message's instant first. Returns the number of messages delivered.
// The merge is a head scan across the per-shard mailboxes — each box
// is already time-sorted (member events fire in time order), so the
// earliest head is the global minimum.
func (d *Dispatcher) Flush(bound float64) int {
	p := d.par
	n := 0
	for {
		best := -1
		var bt float64
		for i := range p.boxes {
			c := p.cur[i]
			if c >= len(p.boxes[i]) {
				continue
			}
			if at := p.boxes[i][c].at; best < 0 || at < bt {
				best, bt = i, at
			}
		}
		if best < 0 {
			break
		}
		m := p.boxes[best][p.cur[best]]
		p.boxes[best][p.cur[best]] = parMsg{}
		p.cur[best]++
		if p.cur[best] == len(p.boxes[best]) {
			p.boxes[best] = p.boxes[best][:0]
			p.cur[best] = 0
		}
		p.coord.AdvanceTo(m.at)
		d.replay(best, m)
		n++
	}
	return n
}

// replay performs one buffered hook firing on the coordinator, with
// the coordinator clock already standing at the message's instant.
// The bodies mirror the sequential hooks in installHooks exactly.
func (d *Dispatcher) replay(i int, m parMsg) {
	switch m.kind {
	case parDone:
		d.settle(i, m.t.Item.SizeHint)
		if m.t.UserCB != nil {
			m.t.UserCB(m.t)
		}
	case parComplete:
		if d.OnComplete != nil {
			d.OnComplete(i, m.t)
		}
		d.maybeFinishDrainIdle(i, m.empty)
	case parDrop:
		d.settle(i, m.t.Item.SizeHint)
		d.routed[i]--
		if d.OnDrop != nil {
			d.OnDrop(i, m.t)
		}
	case parShed:
		d.maybeFinishDrainIdle(i, m.empty)
	}
}

// maybeFinishDrainIdle is maybeFinishDrain with the emptiness
// predicate captured at hook time instead of read live.
func (d *Dispatcher) maybeFinishDrainIdle(i int, empty bool) {
	if d.state[i] == ShardDraining && empty {
		d.markDown(i)
	}
}

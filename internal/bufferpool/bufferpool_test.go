package bufferpool

import (
	"math"
	"testing"
	"testing/quick"

	"extsched/internal/sim"
)

func TestLRUBasics(t *testing.T) {
	p := New(2)
	if p.Access(1) {
		t.Error("first access should miss")
	}
	if !p.Access(1) {
		t.Error("second access should hit")
	}
	p.Access(2) // miss, pool = {1,2}
	p.Access(3) // miss, evicts 1 (LRU)
	if p.Access(1) {
		t.Error("evicted page should miss")
	}
	// Now pool = {3,1} (2 was LRU after 3's insert? order: access(2)
	// → front 2; access(3) → evict 1, front 3, pool {3,2}; access(1)
	// → evict 2, pool {1,3}).
	if !p.Access(3) {
		t.Error("page 3 should still be resident")
	}
	if p.Resident() != 2 {
		t.Errorf("resident = %d, want 2", p.Resident())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := New(3)
	p.Access(1)
	p.Access(2)
	p.Access(3)
	p.Access(1) // 1 now MRU; LRU order: 2,3,1
	p.Access(4) // evicts 2
	if p.Access(2) {
		t.Error("page 2 should have been evicted")
	}
	// Accessing 2 above evicted 3 (LRU after: 3,1,4 → evict 3).
	if p.Access(3) {
		t.Error("page 3 should have been evicted")
	}
}

func TestHitRatioCounters(t *testing.T) {
	p := New(10)
	for i := uint64(0); i < 10; i++ {
		p.Access(i)
	}
	for i := uint64(0); i < 10; i++ {
		p.Access(i)
	}
	if p.Hits() != 10 || p.Misses() != 10 {
		t.Errorf("hits/misses = %d/%d, want 10/10", p.Hits(), p.Misses())
	}
	if p.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", p.HitRatio())
	}
	p.ResetStats()
	if p.Hits() != 0 || p.Misses() != 0 || p.HitRatio() != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if p.Resident() != 10 {
		t.Error("ResetStats evicted pages")
	}
}

func TestResidentNeverExceedsCapacityProperty(t *testing.T) {
	f := func(capRaw uint8, accesses []uint16) bool {
		capacity := 1 + int(capRaw%32)
		p := New(capacity)
		for _, a := range accesses {
			p.Access(uint64(a))
			if p.Resident() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFullyCachedNoMissesAfterWarmup(t *testing.T) {
	p := New(100)
	pat := AccessPattern{DBPages: 100, HotFrac: 0.2, HotAccess: 0.8}
	g := sim.NewRNG(1, 0)
	for i := 0; i < 1000; i++ {
		p.Access(pat.Sample(g))
	}
	p.ResetStats()
	for i := 0; i < 10000; i++ {
		p.Access(pat.Sample(g))
	}
	// DB fits entirely: after warmup the miss ratio tends to 0 (cold
	// pages may still trickle in).
	if r := p.HitRatio(); r < 0.97 {
		t.Errorf("hit ratio = %v, want > 0.97 for fully cached DB", r)
	}
}

func TestSkewedPatternHitRatio(t *testing.T) {
	// Pool covers the hot set, but cold accesses pollute the LRU, so
	// the hit ratio lands well below HotAccess yet far above the
	// no-locality baseline capacity/DBPages = 0.1.
	pat := AccessPattern{DBPages: 10000, HotFrac: 0.1, HotAccess: 0.9}
	p := New(1000)
	g := sim.NewRNG(2, 0)
	for i := 0; i < 20000; i++ {
		p.Access(pat.Sample(g))
	}
	p.ResetStats()
	for i := 0; i < 100000; i++ {
		p.Access(pat.Sample(g))
	}
	if r := p.HitRatio(); r < 0.5 || r > 0.9 {
		t.Errorf("hit ratio = %v, want in (0.5, 0.9)", r)
	}
}

func TestExpectedMissRatioMatchesSimulation(t *testing.T) {
	cases := []struct {
		pat      AccessPattern
		capacity int
	}{
		{AccessPattern{DBPages: 10000, HotFrac: 0.1, HotAccess: 0.9}, 1000},
		{AccessPattern{DBPages: 10000, HotFrac: 0.2, HotAccess: 0.8}, 500},
		{AccessPattern{DBPages: 10000, HotFrac: 0.2, HotAccess: 0.8}, 5000},
	}
	for _, tc := range cases {
		p := New(tc.capacity)
		g := sim.NewRNG(3, 0)
		for i := 0; i < 50000; i++ {
			p.Access(tc.pat.Sample(g))
		}
		p.ResetStats()
		for i := 0; i < 200000; i++ {
			p.Access(tc.pat.Sample(g))
		}
		measured := 1 - p.HitRatio()
		predicted := tc.pat.ExpectedMissRatio(tc.capacity)
		if math.Abs(measured-predicted) > 0.05 {
			t.Errorf("%+v cap=%d: measured miss %v, predicted %v",
				tc.pat, tc.capacity, measured, predicted)
		}
	}
}

func TestExpectedMissRatioBounds(t *testing.T) {
	pat := AccessPattern{DBPages: 1000, HotFrac: 0.2, HotAccess: 0.8}
	if r := pat.ExpectedMissRatio(1000); r != 0 {
		t.Errorf("fully cached miss ratio = %v, want 0", r)
	}
	if r := pat.ExpectedMissRatio(2000); r != 0 {
		t.Errorf("oversized pool miss ratio = %v, want 0", r)
	}
	prev := 1.0
	for _, c := range []int{10, 100, 200, 400, 800, 999} {
		r := pat.ExpectedMissRatio(c)
		if r < 0 || r > 1 {
			t.Fatalf("miss ratio %v outside [0,1] at capacity %d", r, c)
		}
		if r > prev+1e-12 {
			t.Errorf("miss ratio not non-increasing: %v after %v at cap %d", r, prev, c)
		}
		prev = r
	}
}

func TestAccessPatternValidate(t *testing.T) {
	good := AccessPattern{DBPages: 10, HotFrac: 0.5, HotAccess: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	for _, bad := range []AccessPattern{
		{DBPages: 0, HotFrac: 0.5, HotAccess: 0.5},
		{DBPages: 10, HotFrac: 0, HotAccess: 0.5},
		{DBPages: 10, HotFrac: 1.5, HotAccess: 0.5},
		{DBPages: 10, HotFrac: 0.5, HotAccess: -0.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid pattern accepted: %+v", bad)
		}
	}
}

func TestSampleWithinRange(t *testing.T) {
	pat := AccessPattern{DBPages: 500, HotFrac: 0.1, HotAccess: 0.7}
	g := sim.NewRNG(4, 0)
	for i := 0; i < 10000; i++ {
		page := pat.Sample(g)
		if page >= 500 {
			t.Fatalf("sampled page %d outside DB of 500 pages", page)
		}
	}
}

func TestCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestDirtyTracking(t *testing.T) {
	p := New(4)
	p.Access(1)
	p.Access(2)
	p.MarkDirty(1)
	p.MarkDirty(2)
	p.MarkDirty(99) // not resident: ignored
	if p.DirtyCount() != 2 {
		t.Errorf("dirty = %d, want 2", p.DirtyCount())
	}
	got := p.CollectDirty(10)
	if len(got) != 2 {
		t.Errorf("collected %d, want 2", len(got))
	}
	if p.DirtyCount() != 0 {
		t.Error("CollectDirty did not clear flags")
	}
	if p.CollectDirty(10) != nil {
		t.Error("second collect should be empty")
	}
}

func TestCollectDirtyBatchLimit(t *testing.T) {
	p := New(10)
	for i := uint64(0); i < 8; i++ {
		p.Access(i)
		p.MarkDirty(i)
	}
	first := p.CollectDirty(3)
	if len(first) != 3 {
		t.Errorf("batch = %d, want 3", len(first))
	}
	if p.DirtyCount() != 5 {
		t.Errorf("remaining dirty = %d, want 5", p.DirtyCount())
	}
}

func TestEvictedDirtyCounted(t *testing.T) {
	p := New(2)
	p.Access(1)
	p.MarkDirty(1)
	p.Access(2)
	p.Access(3) // evicts 1 (dirty)
	if p.EvictedDirty() != 1 {
		t.Errorf("evicted dirty = %d, want 1", p.EvictedDirty())
	}
	if p.DirtyCount() != 0 {
		t.Errorf("dirty = %d after eviction, want 0", p.DirtyCount())
	}
}

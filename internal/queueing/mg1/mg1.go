// Package mg1 provides closed-form M/G/1 reference results used to
// sanity-check the simulator and the CTMC/QBD solvers: the
// Pollaczek–Khinchine mean waiting time for FIFO, and the
// variability-insensitive M/G/1/PS response time. The paper's external
// scheduling mechanism interpolates between exactly these two systems:
// MPL=1 behaves like FIFO, MPL→∞ like PS.
package mg1

import (
	"fmt"
	"math"
)

// Params describes an M/G/1 queue by arrival rate, mean job size, and
// squared coefficient of variation of the job size.
type Params struct {
	Lambda   float64 // arrival rate (jobs/sec)
	MeanSize float64 // mean service requirement (sec)
	C2       float64 // squared coefficient of variation of job size
}

// Validate reports whether the parameters describe a stable queue.
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.MeanSize <= 0 || p.C2 < 0 {
		return fmt.Errorf("mg1: invalid parameters %+v", p)
	}
	if rho := p.Rho(); rho >= 1 {
		return fmt.Errorf("mg1: unstable queue, rho = %v >= 1", rho)
	}
	return nil
}

// Rho returns the offered load λ·E[S].
func (p Params) Rho() float64 { return p.Lambda * p.MeanSize }

// FIFOWait returns the Pollaczek–Khinchine mean waiting time (excluding
// service): E[W] = ρ/(1−ρ) · (1+C²)/2 · E[S].
func (p Params) FIFOWait() float64 {
	rho := p.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho) * (1 + p.C2) / 2 * p.MeanSize
}

// FIFOResponse returns mean FIFO response time E[T] = E[W] + E[S].
func (p Params) FIFOResponse() float64 { return p.FIFOWait() + p.MeanSize }

// PSResponse returns the M/G/1/PS mean response time
// E[T] = E[S]/(1−ρ), which is insensitive to C². This is the paper's
// "PS" baseline in Fig. 10 and the controller's response-time optimum.
func (p Params) PSResponse() float64 {
	rho := p.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return p.MeanSize / (1 - rho)
}

// FIFOMeanJobs returns the mean number in system under FIFO, by
// Little's law on FIFOResponse.
func (p Params) FIFOMeanJobs() float64 { return p.Lambda * p.FIFOResponse() }

// PSMeanJobs returns the mean number in system under PS: ρ/(1−ρ).
func (p Params) PSMeanJobs() float64 {
	rho := p.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// MM1Response returns the M/M/1 mean response time E[S]/(1−ρ); for
// C²=1 FIFO, PS, and M/M/1 all coincide, which the tests exploit.
func (p Params) MM1Response() float64 { return p.PSResponse() }

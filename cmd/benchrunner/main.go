// Command benchrunner regenerates the paper's tables and figures.
//
// Each experiment id corresponds to one table or figure of the
// evaluation; see DESIGN.md for the index. Sweep points fan out across
// a worker pool (-workers, default GOMAXPROCS); results are identical
// to a sequential run, only faster. Output is an aligned text table by
// default, CSV with -csv, or a machine-readable summary with -json.
//
// Examples:
//
//	benchrunner -exp fig7                 # analytic, instant
//	benchrunner -exp fig2 -measure 300    # simulated throughput sweep
//	benchrunner -exp fig11 -loss 0.05
//	benchrunner -exp dispatch -slow 0.25  # sharded dispatch policies
//	benchrunner -exp fig2 -workers 1      # sequential reference run
//	benchrunner -exp all -json bench.json # everything + JSON summary
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"extsched/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment: fig2 fig3 fig4 fig5 fig7 fig10 fig11 fig12 fig13 rt-open surge dispatch slo churn autoscale fairness pds c2 controller controller-ablation all")
		slow     = flag.Float64("slow", 0.25, "slow shard's relative speed for the dispatch experiment")
		sloP95   = flag.Float64("slo-target", 0, "high-class p95 target in seconds for the slo experiment (0 = auto from baseline)")
		loss     = flag.Float64("loss", 0.05, "throughput-loss threshold for fig11")
		util     = flag.Float64("util", 0.7, "open-system utilization for rt-open")
		setup    = flag.Int("setup", 3, "setup id for rt-open")
		warmup   = flag.Float64("warmup", 0, "override warmup sim-seconds (0 = auto)")
		measure  = flag.Float64("measure", 0, "override measured sim-seconds (0 = auto)")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		chart    = flag.Bool("chart", false, "render an ASCII chart instead of a table")
		outdir   = flag.String("outdir", "", "also write each figure as CSV into this directory")
		jsonPath = flag.String("json", "", "write a BENCH_*.json-style machine-readable summary to this file (\"-\" for stdout)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	experiments.DefaultWorkers = *workers
	// First SIGINT/SIGTERM cancels the sweep context: running points
	// finish, queued points are skipped, and the run exits cleanly. A
	// second signal kills the process (signal.NotifyContext restores
	// default handling once the context is done).
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()
	opts := experiments.RunOpts{Warmup: *warmup, Measure: *measure, Seed: *seed, Ctx: ctx}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig2", "fig3", "fig4", "fig5", "fig7", "fig10", "c2",
			"rt-open", "fig11", "fig12", "fig13", "controller"}
	}
	summary := benchSummary{
		Workers:    experiments.EffectiveWorkers(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
	}
	// With -json - the summary owns stdout; human tables move to
	// stderr so the JSON stays machine-readable in a pipe.
	tableOut := io.Writer(os.Stdout)
	if *jsonPath == "-" {
		tableOut = os.Stderr
	}
	// A per-experiment failure must not vanish the whole -json summary:
	// the experiments that did run are written out (with the failure
	// recorded next to them) and the exit code stays nonzero, so a CI
	// artifact is never silently empty.
	writeOut := func(code int) {
		if *jsonPath != "" {
			if err := writeSummary(*jsonPath, summary); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}
		os.Exit(code)
	}
	exitCode := 0
	for _, id := range ids {
		start := time.Now()
		fig, err := run(id, *loss, *util, *setup, *slow, *sloP95, opts)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: interrupted, exiting\n", id)
			summary.Failures = append(summary.Failures, experimentFailure{ID: id, Error: "interrupted"})
			writeOut(130)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", id, err)
			summary.Failures = append(summary.Failures, experimentFailure{ID: id, Error: err.Error()})
			exitCode = 1
			continue
		}
		elapsed := time.Since(start)
		summary.Experiments = append(summary.Experiments, experimentSummary{
			ID:       fig.ID,
			Title:    fig.Title,
			WallSecs: elapsed.Seconds(),
			Series:   summarizeSeries(fig),
			Notes:    fig.Notes,
		})
		switch {
		case *csv:
			fmt.Fprint(tableOut, fig.CSV())
		case *chart:
			fmt.Fprint(tableOut, fig.Chart(72, 20))
		default:
			fmt.Fprint(tableOut, fig.Format())
		}
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, sanitize(fig.ID)+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		fmt.Fprintln(tableOut)
	}
	writeOut(exitCode)
}

// benchSummary is the -json output: one record per experiment with its
// wall-clock cost and the reproduced series, so the perf trajectory of
// the repo is machine-readable across PRs (BENCH_*.json convention).
type benchSummary struct {
	Workers     int                 `json:"workers"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	Seed        uint64              `json:"seed"`
	Experiments []experimentSummary `json:"experiments"`
	// Failures lists the experiments that errored; a summary carrying
	// any is partial and the process exited nonzero.
	Failures []experimentFailure `json:"failures,omitempty"`
}

type experimentFailure struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

type experimentSummary struct {
	ID       string          `json:"id"`
	Title    string          `json:"title"`
	WallSecs float64         `json:"wall_secs"`
	Series   []seriesSummary `json:"series"`
	Notes    []string        `json:"notes,omitempty"`
}

type seriesSummary struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

func summarizeSeries(fig *experiments.Figure) []seriesSummary {
	out := make([]seriesSummary, 0, len(fig.Series))
	for _, s := range fig.Series {
		out = append(out, seriesSummary{Name: s.Name, X: s.X, Y: s.Y})
	}
	return out
}

func writeSummary(path string, s benchSummary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// sanitize makes a figure id filesystem-friendly.
func sanitize(id string) string {
	r := strings.NewReplacer("@", "-at-", "%", "pct", "/", "-", " ", "_")
	return r.Replace(id)
}

func run(id string, loss, util float64, setupID int, slow, sloTarget float64, opts experiments.RunOpts) (*experiments.Figure, error) {
	switch id {
	case "dispatch":
		return experiments.DispatchFigure(setupID, slow, opts)
	case "slo":
		return experiments.SLOFigure(setupID, sloTarget, opts)
	case "churn":
		return experiments.ChurnFigure(setupID, opts)
	case "autoscale":
		return experiments.AutoscaleFigure(setupID, opts)
	case "fairness":
		return experiments.FairnessFigure(setupID, opts)
	case "pds":
		return experiments.PDSFigure(setupID, opts)
	case "fig2":
		return experiments.Figure2(opts)
	case "fig3":
		return experiments.Figure3(opts)
	case "fig4":
		return experiments.Figure4(opts)
	case "fig5":
		return experiments.Figure5(opts)
	case "fig7":
		return experiments.Figure7()
	case "fig10":
		return experiments.Figure10()
	case "fig11":
		return experiments.Figure11(loss, nil, opts)
	case "fig12":
		return experiments.FigureInternal(1, opts)
	case "fig13":
		return experiments.FigureInternal(3, opts)
	case "rt-open":
		return experiments.Section32RT(setupID, util, []int{1, 2, 4, 6, 8, 10, 15, 20, 30}, opts)
	case "surge":
		return experiments.SurgeFigure(setupID, loss, opts)
	case "rt-summary":
		return experiments.Section32Summary(0.1, opts)
	case "c2":
		return experiments.C2Figure(200000, opts.Seed)
	case "controller":
		return experiments.ControllerFigure(nil, loss, true, opts)
	case "controller-ablation":
		return experiments.ControllerFigure(nil, loss, false, opts)
	case "ablate-groupcommit":
		return experiments.GroupCommitAblation(setupID, []int{1, 2, 5, 10, 20, 40}, opts)
	case "ablate-pow":
		return experiments.POWAblation(opts)
	case "ablate-policy":
		return experiments.PolicyComparison(setupID, 3, opts)
	case "ablate-admission":
		return experiments.AdmissionComparison(setupID, 5, 20, 0.9, opts)
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}

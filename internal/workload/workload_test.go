package workload

import (
	"math"
	"testing"

	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
	"extsched/internal/stats"
)

func TestTable1SpecsValidate(t *testing.T) {
	specs := Table1()
	if len(specs) != 6 {
		t.Fatalf("Table1 has %d workloads, want 6", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("W_IO-inventory")
	if err != nil || s.Name != "W_IO-inventory" {
		t.Errorf("ByName failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestTable2Shape(t *testing.T) {
	setups := Table2()
	if len(setups) != 17 {
		t.Fatalf("Table2 has %d setups, want 17", len(setups))
	}
	for i, s := range setups {
		if s.ID != i+1 {
			t.Errorf("setup at index %d has ID %d", i, s.ID)
		}
	}
	// Spot checks against the paper's Table 2.
	if s := setups[1]; s.Workload.Name != "W_CPU-inventory" || s.CPUs != 2 || s.Disks != 1 {
		t.Errorf("setup 2 wrong: %v", s)
	}
	if s := setups[7]; s.Workload.Name != "W_IO-inventory" || s.Disks != 4 {
		t.Errorf("setup 8 wrong: %v", s)
	}
	if s := setups[13]; s.Isolation != dbms.UR {
		t.Errorf("setup 14 should be UR: %v", s)
	}
	if s := setups[16]; s.Workload.Name != "W_CPU-inventory" || s.Isolation != dbms.UR {
		t.Errorf("setup 17 wrong: %v", s)
	}
}

func TestSetupByID(t *testing.T) {
	s, err := SetupByID(12)
	if err != nil || s.CPUs != 2 || s.Disks != 4 {
		t.Errorf("SetupByID(12) = %v, %v", s, err)
	}
	if _, err := SetupByID(99); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, err := NewGenerator(WCPUInventory(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewGenerator(WCPUInventory(), 42)
	for i := 0; i < 100; i++ {
		pa, pb := a.Next(), b.Next()
		if len(pa.Ops) != len(pb.Ops) || pa.EstimatedDemand != pb.EstimatedDemand || pa.Class != pb.Class {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestGeneratorClassTagging(t *testing.T) {
	g, _ := NewGenerator(WCPUInventory(), 7)
	high := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Class == lockmgr.High {
			high++
		}
	}
	frac := float64(high) / n
	if math.Abs(frac-0.1) > 0.01 {
		t.Errorf("high fraction = %v, want ~0.1", frac)
	}
}

func TestGeneratorProfileSanity(t *testing.T) {
	for _, spec := range Table1() {
		g, err := NewGenerator(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			p := g.Next()
			if len(p.Ops) == 0 {
				t.Fatalf("%s: empty profile", spec.Name)
			}
			if p.EstimatedDemand <= 0 {
				t.Fatalf("%s: non-positive demand estimate", spec.Name)
			}
			for _, op := range p.Ops {
				if op.CPUWork < 0 {
					t.Fatalf("%s: negative CPU work", spec.Name)
				}
				for _, pg := range op.Pages {
					if pg >= spec.DBPages {
						t.Fatalf("%s: page %d outside DB", spec.Name, pg)
					}
				}
			}
		}
	}
}

// TestDemandVariabilityCalibration verifies the paper's Section 3.2
// C² characterization: TPC-C-like workloads have C² ≈ 1–1.5 and
// TPC-W-like ones C² ≈ 15.
func TestDemandVariabilityCalibration(t *testing.T) {
	wantRange := map[string][2]float64{
		"W_CPU-inventory":    {0.7, 2.2},
		"W_CPU+IO-inventory": {0.7, 2.5},
		"W_IO-inventory":     {0.3, 2.2}, // "pure IO": near-deterministic pages → lower C² is fine
		"W_CPU-browsing":     {8, 25},
		"W_IO-browsing":      {8, 25},
		"W_CPU-ordering":     {8, 25},
	}
	for _, spec := range Table1() {
		g, err := NewGenerator(spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		var acc stats.Accumulator
		for i := 0; i < 200000; i++ {
			acc.Add(g.Next().EstimatedDemand)
		}
		r := wantRange[spec.Name]
		if acc.C2() < r[0] || acc.C2() > r[1] {
			t.Errorf("%s: demand C² = %.2f, want in [%v, %v] (mean %.4fs)",
				spec.Name, acc.C2(), r[0], r[1], acc.Mean())
		}
	}
}

// TestDemandBalanceCharacteristics checks each workload is bound by
// the resource its name claims.
func TestDemandBalanceCharacteristics(t *testing.T) {
	for _, tc := range []struct {
		spec         Spec
		cpuOverIOMin float64 // lower bound on CPU/IO demand ratio, 0 to skip
		ioOverCPUMin float64
	}{
		{WCPUInventory(), 5, 0},
		{WCPUBrowsing(), 5, 0},
		{WIOInventory(), 0, 5},
		{WIOBrowsing(), 0, 3},
		{WCPUOrdering(), 5, 0},
	} {
		cpu, io := tc.spec.MeanCPUDemand(), tc.spec.MeanIODemand()
		if tc.cpuOverIOMin > 0 && cpu < tc.cpuOverIOMin*io {
			t.Errorf("%s: cpu=%.4f io=%.4f, want CPU-bound (ratio >= %v)",
				tc.spec.Name, cpu, io, tc.cpuOverIOMin)
		}
		if tc.ioOverCPUMin > 0 && io < tc.ioOverCPUMin*cpu {
			t.Errorf("%s: cpu=%.4f io=%.4f, want IO-bound (ratio >= %v)",
				tc.spec.Name, cpu, io, tc.ioOverCPUMin)
		}
	}
	// Balanced workload: demands within 2.5x of each other.
	bal := WCPUIOInventory()
	cpu, io := bal.MeanCPUDemand(), bal.MeanIODemand()
	ratio := cpu / io
	if ratio < 1/2.5 || ratio > 2.5 {
		t.Errorf("%s: cpu=%.4f io=%.4f ratio=%.2f, want balanced", bal.Name, cpu, io, ratio)
	}
}

func TestClosedDriverPopulationInvariant(t *testing.T) {
	eng := sim.NewEngine()
	spec := WCPUInventory()
	db, err := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		BufferPoolPages: spec.BufferPoolPages,
		DiskService:     spec.DiskService,
		LogService:      spec.LogService,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe := dbfe.New(eng, db, 5, nil)
	g, _ := NewGenerator(spec, 5)
	d := NewClosedDriver(eng, fe, g, 20, nil)
	d.Start()
	// Population (queued + inside) must never exceed the client count
	// and inside must never exceed the MPL.
	violations := 0
	for i := 0; i < 20000 && eng.Step(); i++ {
		if fe.Inside() > 5 || fe.Inside()+fe.QueueLen() > 20 {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("%d population invariant violations", violations)
	}
	if fe.Metrics().Completed < 100 {
		t.Errorf("only %d completions; driver stalled?", fe.Metrics().Completed)
	}
	d.Stop()
	eng.RunAll()
}

func TestClosedDriverThinkTime(t *testing.T) {
	eng := sim.NewEngine()
	spec := WCPUInventory()
	db, _ := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		BufferPoolPages: spec.BufferPoolPages,
		DiskService:     spec.DiskService,
		LogService:      spec.LogService,
	})
	fe := dbfe.New(eng, db, 0, nil)
	g, _ := NewGenerator(spec, 6)
	// Huge think time: with 10 clients and 100s thinks, throughput
	// ≈ 10/100 = 0.1/s (service time negligible).
	d := NewClosedDriver(eng, fe, g, 10, dist.NewDeterministic(100))
	d.Start()
	eng.Run(5000)
	d.Stop()
	eng.RunAll()
	m := fe.Metrics()
	tput := float64(m.Completed) / 5000
	if math.Abs(tput-0.1) > 0.02 {
		t.Errorf("think-limited throughput = %v, want ~0.1", tput)
	}
}

func TestOpenDriverPoissonRate(t *testing.T) {
	eng := sim.NewEngine()
	spec := WCPUInventory()
	db, _ := dbms.New(eng, dbms.Config{
		CPUs: 4, Disks: 1,
		BufferPoolPages: spec.BufferPoolPages,
		DiskService:     spec.DiskService,
		LogService:      spec.LogService,
	})
	fe := dbfe.New(eng, db, 0, nil)
	g, _ := NewGenerator(spec, 8)
	d := NewOpenDriver(eng, fe, g, 20, 0)
	d.Start()
	eng.Run(500)
	d.Stop()
	eng.RunAll()
	rate := float64(d.Arrived()) / 500
	if math.Abs(rate-20)/20 > 0.05 {
		t.Errorf("arrival rate = %v, want ~20", rate)
	}
}

func TestOpenDriverLimit(t *testing.T) {
	eng := sim.NewEngine()
	spec := WCPUInventory()
	db, _ := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		BufferPoolPages: spec.BufferPoolPages,
		DiskService:     spec.DiskService,
		LogService:      spec.LogService,
	})
	fe := dbfe.New(eng, db, 0, nil)
	g, _ := NewGenerator(spec, 9)
	d := NewOpenDriver(eng, fe, g, 100, 50)
	d.Start()
	eng.RunAll()
	if d.Arrived() != 50 {
		t.Errorf("arrived = %d, want 50 (limit)", d.Arrived())
	}
	if fe.Metrics().Completed != 50 {
		t.Errorf("completed = %d, want 50", fe.Metrics().Completed)
	}
}

func TestBuildConfigRoundTrip(t *testing.T) {
	for _, s := range Table2() {
		cfg := s.BuildConfig(DBOptions{Seed: uint64(s.ID)})
		eng := sim.NewEngine()
		if _, err := dbms.New(eng, cfg); err != nil {
			t.Errorf("setup %d: config invalid: %v", s.ID, err)
		}
		if cfg.Isolation != s.Isolation || cfg.CPUs != s.CPUs || cfg.Disks != s.Disks {
			t.Errorf("setup %d: config mismatch", s.ID)
		}
	}
}

func TestSpecMissRatios(t *testing.T) {
	// Cached workloads miss ≈ 0; IO workloads miss substantially.
	if r := WCPUInventory().MissRatio(); r > 0.01 {
		t.Errorf("W_CPU-inventory miss = %v, want ~0 (fully cached)", r)
	}
	if r := WCPUBrowsing().MissRatio(); r > 0.01 {
		t.Errorf("W_CPU-browsing miss = %v, want ~0", r)
	}
	if r := WIOInventory().MissRatio(); r < 0.5 {
		t.Errorf("W_IO-inventory miss = %v, want >= 0.5", r)
	}
	if r := WIOBrowsing().MissRatio(); r < 0.4 {
		t.Errorf("W_IO-browsing miss = %v, want >= 0.4", r)
	}
	bal := WCPUIOInventory().MissRatio()
	if bal < 0.05 || bal > 0.5 {
		t.Errorf("W_CPU+IO-inventory miss = %v, want moderate", bal)
	}
}

func TestDriverValidation(t *testing.T) {
	eng := sim.NewEngine()
	spec := WCPUInventory()
	db, _ := dbms.New(eng, dbms.Config{CPUs: 1, Disks: 1, BufferPoolPages: spec.BufferPoolPages})
	fe := dbfe.New(eng, db, 1, nil)
	g, _ := NewGenerator(spec, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero clients did not panic")
			}
		}()
		NewClosedDriver(eng, fe, g, 0, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero lambda did not panic")
			}
		}()
		NewOpenDriver(eng, fe, g, 0, 0)
	}()
}

package controller

import (
	"testing"

	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/sim"
	"extsched/internal/workload"
)

// attach builds a controller over fe and wires the frontend's
// completion stream into it — the wiring every integration (extsched,
// the live gate) now owns itself.
func attach(t *testing.T, eng *sim.Engine, fe *dbfe.Frontend, cfg Config) *Controller {
	t.Helper()
	ctl, err := New(eng.Clock(), fe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := fe.OnComplete
	fe.OnComplete = func(tx *dbfe.Txn) {
		if prev != nil {
			prev(tx)
		}
		ctl.Observe()
	}
	return ctl
}

// buildRig creates an engine, DB and frontend for a Table 2 setup.
func buildRig(t *testing.T, setupID, mpl int, seed uint64) (*sim.Engine, *dbfe.Frontend, workload.Setup) {
	t.Helper()
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	db, err := dbms.New(eng, setup.BuildConfig(workload.DBOptions{Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	fe := dbfe.New(eng, db, mpl, nil)
	gen, err := workload.NewGenerator(setup.Workload, seed)
	if err != nil {
		t.Fatal(err)
	}
	workload.Prewarm(db, setup.Workload, seed)
	workload.NewClosedDriver(eng, fe, gen, 100, nil).Start()
	return eng, fe, setup
}

// measureBaseline runs a setup without MPL and returns (tput, meanRT).
func measureBaseline(t *testing.T, setupID int, seed uint64, horizon float64) (float64, float64) {
	t.Helper()
	eng, fe, _ := buildRig(t, setupID, 0, seed)
	eng.Run(horizon / 4) // warmup
	fe.ResetMetrics()
	eng.Run(horizon)
	m := fe.Metrics()
	return m.Throughput(), m.All.Mean()
}

func TestJumpStartScalesWithDisks(t *testing.T) {
	mk := func(disks int) int {
		m, err := JumpStart(JumpStartInput{
			CPUs: 1, Disks: disks,
			CPUDemand: 0.001, IODemand: 0.2,
			ThroughputFraction: 0.95,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m4 := mk(1), mk(4)
	if m4 <= m1 {
		t.Errorf("jump-start MPL for 4 disks (%d) should exceed 1 disk (%d)", m4, m1)
	}
	if m1 < 1 || m4 > 100 {
		t.Errorf("jump-start values out of sane range: %d, %d", m1, m4)
	}
}

func TestJumpStartRTBoundRaises(t *testing.T) {
	base, err := JumpStart(JumpStartInput{
		CPUs: 1, Disks: 1,
		CPUDemand: 0.1, IODemand: 0,
		ThroughputFraction: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	withRT, err := JumpStart(JumpStartInput{
		CPUs: 1, Disks: 1,
		CPUDemand: 0.1, IODemand: 0,
		ThroughputFraction: 0.95,
		Lambda:             7, // rho 0.7
		MeanDemand:         0.1,
		DemandC2:           15,
		RTTolerance:        0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withRT <= base {
		t.Errorf("high-C² RT bound should raise the start: base %d, withRT %d", base, withRT)
	}
}

func TestJumpStartValidation(t *testing.T) {
	if _, err := JumpStart(JumpStartInput{CPUs: 1, Disks: 1, CPUDemand: 1, ThroughputFraction: 0}); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := JumpStart(JumpStartInput{CPUs: 0, Disks: 0, ThroughputFraction: 0.9}); err == nil {
		t.Error("no resources accepted")
	}
}

func TestNewValidation(t *testing.T) {
	eng, fe, _ := buildRig(t, 1, 5, 1)
	_ = eng
	if _, err := New(eng.Clock(), fe, Config{Targets: Targets{MaxThroughputLoss: 0.05}}); err == nil {
		t.Error("missing reference accepted")
	}
	if _, err := New(eng.Clock(), fe, Config{
		Targets:   Targets{MaxThroughputLoss: 1.5},
		Reference: Reference{MaxThroughput: 10},
	}); err == nil {
		t.Error("loss >= 1 accepted")
	}
}

// TestConvergesFromJumpStart is the paper's headline controller claim:
// with the queueing jump-start, the loop converges in fewer than 10
// iterations to an MPL that meets the targets.
func TestConvergesFromJumpStart(t *testing.T) {
	setup, _ := workload.SetupByID(1)
	refTput, _ := measureBaseline(t, 1, 99, 120)
	cpuD, ioD := setup.Demands()
	start, err := JumpStart(JumpStartInput{
		CPUs: setup.CPUs, Disks: setup.Disks,
		CPUDemand: cpuD, IODemand: ioD,
		ThroughputFraction: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, fe, _ := buildRig(t, 1, start, 42)
	// Warm up before attaching so the pool and lock state are hot.
	eng.Run(20)
	ctl := attach(t, eng, fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05},
		Reference: Reference{MaxThroughput: refTput},
	})
	eng.Run(2000)
	if !ctl.Converged() {
		t.Fatalf("controller did not converge; history: %+v", ctl.History())
	}
	if ctl.Iterations() >= 10 {
		t.Errorf("converged in %d iterations, want < 10 (history %+v)", ctl.Iterations(), ctl.History())
	}
	final := fe.MPL()
	if final < 1 || final > 40 {
		t.Errorf("final MPL = %d, want a low value", final)
	}
	// Verify feasibility: measure at the final MPL.
	eng2, fe2, _ := buildRig(t, 1, final, 7)
	eng2.Run(30)
	fe2.ResetMetrics()
	eng2.Run(150)
	tput := fe2.Metrics().Throughput()
	if tput < 0.90*refTput {
		t.Errorf("final MPL %d gives tput %.2f, reference %.2f (>10%% loss)", final, tput, refTput)
	}
}

func TestIncreasesWhenStartedTooLow(t *testing.T) {
	// IO-bound 4-disk setup (8): MPL 1 wastes 3 disks; controller must
	// climb.
	refTput, _ := measureBaseline(t, 8, 5, 400)
	eng, fe, _ := buildRig(t, 8, 1, 6)
	eng.Run(50)
	ctl := attach(t, eng, fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05},
		Reference: Reference{MaxThroughput: refTput},
	})
	eng.Run(4000)
	if fe.MPL() <= 1 {
		t.Errorf("MPL stayed at %d; expected increases (history %+v)", fe.MPL(), ctl.History())
	}
	increases := 0
	for _, d := range ctl.History() {
		if d.Action == Increase {
			increases++
		}
	}
	if increases == 0 {
		t.Error("no increase actions recorded")
	}
}

func TestDecreasesWhenStartedTooHigh(t *testing.T) {
	refTput, _ := measureBaseline(t, 1, 5, 120)
	eng, fe, _ := buildRig(t, 1, 60, 8)
	eng.Run(20)
	ctl := attach(t, eng, fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05},
		Reference: Reference{MaxThroughput: refTput},
	})
	eng.Run(2000)
	if fe.MPL() >= 60 {
		t.Errorf("MPL stayed at %d; expected decreases (history %+v)", fe.MPL(), ctl.History())
	}
	decreases := 0
	for _, d := range ctl.History() {
		if d.Action == Decrease {
			decreases++
		}
	}
	if decreases == 0 {
		t.Error("no decrease actions recorded")
	}
}

func TestNoReactionWithoutLoad(t *testing.T) {
	// A nearly idle system (few clients, long think times) must not
	// trigger reactions: the load-representative gate keeps windows
	// open/reset.
	setup, _ := workload.SetupByID(1)
	eng := sim.NewEngine()
	db, _ := dbms.New(eng, setup.BuildConfig(workload.DBOptions{Seed: 3}))
	fe := dbfe.New(eng, db, 10, nil)
	gen, _ := workload.NewGenerator(setup.Workload, 3)
	workload.NewClosedDriver(eng, fe, gen, 2, dist.NewDeterministic(1)).Start()
	ctl := attach(t, eng, fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05},
		Reference: Reference{MaxThroughput: 80},
	})
	eng.Run(500)
	if ctl.Iterations() != 0 {
		t.Errorf("controller reacted %d times on an idle system: %+v", ctl.Iterations(), ctl.History())
	}
}

func TestHistoryRecordsMetrics(t *testing.T) {
	refTput, _ := measureBaseline(t, 1, 5, 60)
	eng, fe, _ := buildRig(t, 1, 3, 9)
	eng.Run(10)
	ctl := attach(t, eng, fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05},
		Reference: Reference{MaxThroughput: refTput},
	})
	eng.Run(500)
	if len(ctl.History()) == 0 {
		t.Fatal("no history")
	}
	for _, d := range ctl.History() {
		if d.Throughput <= 0 || d.MeanRT <= 0 || d.MPL < 1 {
			t.Errorf("bad decision record: %+v", d)
		}
	}
}

package experiments

import (
	"fmt"

	"extsched/internal/core"
	"extsched/internal/lockmgr"
	"extsched/internal/workload"
)

// GroupCommitAblation measures the effect of batching commit log
// writes. At high MPLs the serial log write becomes a hidden extra
// "resource" that inflates the MPL needed for peak throughput — one of
// the reasons the paper's W_CPU-inventory needed a slightly higher MPL
// than its CPU count alone suggests (§3.1 points at log I/O from
// updates).
func GroupCommitAblation(setupID int, mpls []int, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:    "ablate-groupcommit",
		Title: fmt.Sprintf("Group commit on/off, setup %d: throughput vs MPL", setupID),
	}
	variants := []bool{false, true}
	// Flatten (variant, MPL) into one parallel sweep.
	tputs, err := SweepContext(opts.ctx(), len(variants)*len(mpls), func(i int) (float64, error) {
		gc, m := variants[i/len(mpls)], mpls[i%len(mpls)]
		r, err := RunClosed(setup, m, nil, workload.DBOptions{GroupCommit: gc}, opts)
		if err != nil {
			return 0, err
		}
		return r.Throughput(), nil
	})
	if err != nil {
		return nil, err
	}
	for vi, gc := range variants {
		name := "serial-log"
		if gc {
			name = "group-commit"
		}
		s := Series{Name: name}
		for mi, m := range mpls {
			s.X = append(s.X, float64(m))
			s.Y = append(s.Y, tputs[vi*len(mpls)+mi])
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes, "expect: group commit lifts high-MPL throughput on commit-heavy workloads")
	return f, nil
}

// POWAblation compares the two internal lock-prioritization variants
// on the lock-bound setup: plain priority queues (high-class waiters
// jump the queue) versus full Preempt-on-Wait (additionally aborting
// blocked low-priority holders) — the McWherter et al. comparison the
// paper builds on.
func POWAblation(opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(1)
	if err != nil {
		return nil, err
	}
	f := &Figure{ID: "ablate-pow", Title: "Internal lock prioritization: none vs priority-queue vs POW (setup 1)"}
	variants := []struct {
		name string
		dbo  workload.DBOptions
	}{
		{"no-priority", workload.DBOptions{}},
		{"prio-queue", workload.DBOptions{LockPolicy: lockmgr.PriorityFIFO}},
		{"pow", workload.DBOptions{LockPolicy: lockmgr.PriorityFIFO, POW: true}},
	}
	high := Series{Name: "HighPrio RT (s)"}
	low := Series{Name: "LowPrio RT (s)"}
	preempt := Series{Name: "preemptions"}
	results, err := SweepContext(opts.ctx(), len(variants), func(i int) (RunResult, error) {
		return RunClosed(setup, 0, nil, variants[i].dbo, opts)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		x := float64(i)
		high.X = append(high.X, x)
		high.Y = append(high.Y, r.Metrics.High.Mean())
		low.X = append(low.X, x)
		low.Y = append(low.Y, r.Metrics.Low.Mean())
		preempt.X = append(preempt.X, x)
		preempt.Y = append(preempt.Y, float64(r.Lock.Preemptions))
		f.Notes = append(f.Notes, fmt.Sprintf("x=%d: %s", i, variants[i].name))
	}
	f.Series = []Series{high, low, preempt}
	f.Notes = append(f.Notes, "expect: prio-queue helps high-priority lock waits; POW helps further when holders block elsewhere")
	return f, nil
}

// PolicyComparison contrasts the external queue policies at a fixed
// low MPL on a high-variability workload: FIFO suffers HOL blocking,
// SJF minimizes overall mean RT, Priority trades overall RT for class
// differentiation — the design space the paper's §1 sketches.
func PolicyComparison(setupID, mpl int, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:    "ablate-policy",
		Title: fmt.Sprintf("External queue policies at MPL %d, setup %d", mpl, setupID),
	}
	mean := Series{Name: "Mean RT (s)"}
	high := Series{Name: "HighPrio RT (s)"}
	tput := Series{Name: "tput (tx/s)"}
	policies := []struct {
		name string
		mk   func() core.Policy
	}{
		{"fifo", func() core.Policy { return core.NewFIFO() }},
		{"sjf", func() core.Policy { return core.NewSJF() }},
		{"priority", func() core.Policy { return core.NewPriority() }},
	}
	results, err := SweepContext(opts.ctx(), len(policies), func(i int) (RunResult, error) {
		return RunClosed(setup, mpl, policies[i].mk(), workload.DBOptions{}, opts)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		x := float64(i)
		mean.X = append(mean.X, x)
		mean.Y = append(mean.Y, r.MeanRT())
		high.X = append(high.X, x)
		high.Y = append(high.Y, r.Metrics.High.Mean())
		tput.X = append(tput.X, x)
		tput.Y = append(tput.Y, r.Throughput())
		f.Notes = append(f.Notes, fmt.Sprintf("x=%d: %s", i, policies[i].name))
	}
	f.Series = []Series{mean, high, tput}
	f.Notes = append(f.Notes, "expect: SJF lowest overall mean RT; priority lowest high-class RT; throughput ~unchanged")
	return f, nil
}

// AdmissionComparison contrasts external scheduling (unbounded queue)
// with the admission-control approach the paper distinguishes itself
// from (§1): same MPL, but arrivals beyond a queue bound are dropped.
// Open system so that dropping actually sheds load.
func AdmissionComparison(setupID, mpl, queueLimit int, utilization float64, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	lambda := utilization * base.Throughput()
	f := &Figure{
		ID:    "ablate-admission",
		Title: fmt.Sprintf("External scheduling vs admission control (drop beyond %d queued), setup %d, MPL %d", queueLimit, setupID, mpl),
	}
	meanRT := Series{Name: "Mean RT (s)"}
	completed := Series{Name: "completed/s"}
	dropped := Series{Name: "dropped/s"}
	limits := []int{0, queueLimit}
	results, err := SweepContext(opts.ctx(), len(limits), func(i int) (openLimitResult, error) {
		return runOpenWithLimit(setup, mpl, lambda, limits[i], opts)
	})
	if err != nil {
		return nil, err
	}
	for i, limit := range limits {
		r := results[i]
		x := float64(i)
		meanRT.X = append(meanRT.X, x)
		meanRT.Y = append(meanRT.Y, r.meanRT)
		completed.X = append(completed.X, x)
		completed.Y = append(completed.Y, r.tput)
		dropped.X = append(dropped.X, x)
		dropped.Y = append(dropped.Y, r.dropRate)
		label := "external (no drops)"
		if limit > 0 {
			label = "admission control"
		}
		f.Notes = append(f.Notes, fmt.Sprintf("x=%d: %s", i, label))
	}
	f.Series = []Series{meanRT, completed, dropped}
	f.Notes = append(f.Notes, "expect: admission control trims RT tails by rejecting work; external scheduling completes everything")
	return f, nil
}

type openLimitResult struct {
	tput, meanRT, dropRate float64
}

// runOpenWithLimit is RunOpen plus a frontend queue bound.
func runOpenWithLimit(setup workload.Setup, mpl int, lambda float64, limit int, opts RunOpts) (openLimitResult, error) {
	opts.QueueLimit = limit
	r, err := RunOpen(setup, mpl, lambda, nil, workload.DBOptions{}, opts)
	if err != nil {
		return openLimitResult{}, err
	}
	return openLimitResult{
		tput:     r.Metrics.Throughput(),
		meanRT:   r.Metrics.All.Mean(),
		dropRate: float64(r.Dropped) / r.SimSeconds,
	}, nil
}

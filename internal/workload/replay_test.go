package workload

import (
	"math"
	"testing"

	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/sim"
	"extsched/internal/trace"
)

func replayRig(t *testing.T, mpl int) (*sim.Engine, *dbfe.Frontend) {
	t.Helper()
	eng := sim.NewEngine()
	db, err := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, dbfe.New(eng, db, mpl, nil)
}

func TestTraceDriverReplaysAll(t *testing.T) {
	tr := trace.SyntheticRetailer(2000, 1)
	eng, fe := replayRig(t, 0)
	d, err := NewTraceDriver(eng, fe, tr)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunAll()
	if d.Started() != 2000 {
		t.Errorf("started = %d, want 2000", d.Started())
	}
	if fe.Metrics().Completed != 2000 {
		t.Errorf("completed = %d, want 2000", fe.Metrics().Completed)
	}
}

func TestTraceDriverTiming(t *testing.T) {
	// A hand-built trace replays at exactly its recorded arrival gaps.
	tr := &trace.Trace{
		Source: "hand",
		Records: []trace.Record{
			{Arrival: 5.0, Demand: 0.1},
			{Arrival: 6.0, Demand: 0.1},
			{Arrival: 8.0, Demand: 0.1},
		},
	}
	eng, fe := replayRig(t, 0)
	var completions []float64
	fe.OnComplete = func(tx *dbfe.Txn) { completions = append(completions, tx.Item.Arrival) }
	d, err := NewTraceDriver(eng, fe, tr)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunAll()
	// First arrival shifted to t=0; gaps preserved (1s, 2s).
	want := []float64{0, 1, 3}
	for i, w := range want {
		if math.Abs(completions[i]-w) > 1e-9 {
			t.Errorf("arrival[%d] = %v, want %v", i, completions[i], w)
		}
	}
}

func TestTraceDriverSpeedup(t *testing.T) {
	tr := &trace.Trace{
		Source: "hand",
		Records: []trace.Record{
			{Arrival: 0, Demand: 0.01},
			{Arrival: 10, Demand: 0.01},
		},
	}
	eng, fe := replayRig(t, 0)
	var arrivals []float64
	fe.OnComplete = func(tx *dbfe.Txn) { arrivals = append(arrivals, tx.Item.Arrival) }
	d, err := NewTraceDriver(eng, fe, tr)
	if err != nil {
		t.Fatal(err)
	}
	d.Speedup = 2
	d.Start()
	eng.RunAll()
	if math.Abs(arrivals[1]-5.0) > 1e-9 {
		t.Errorf("2x replay second arrival at %v, want 5", arrivals[1])
	}
}

func TestTraceDriverStop(t *testing.T) {
	tr := trace.SyntheticRetailer(1000, 2)
	eng, fe := replayRig(t, 0)
	d, err := NewTraceDriver(eng, fe, tr)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	// Stop partway through the trace's span.
	mid := tr.Records[500].Arrival - tr.Records[0].Arrival
	eng.Run(mid)
	d.Stop()
	eng.RunAll()
	if d.Started() >= 1000 {
		t.Errorf("started = %d, want < 1000 after Stop", d.Started())
	}
}

func TestTraceDriverValidation(t *testing.T) {
	eng, fe := replayRig(t, 0)
	if _, err := NewTraceDriver(eng, fe, &trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := &trace.Trace{Records: []trace.Record{{Arrival: 1, Demand: -1}}}
	if _, err := NewTraceDriver(eng, fe, bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

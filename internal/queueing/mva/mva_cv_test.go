package mva

import (
	"math"
	"testing"
)

func TestCVCorrectionSharpensKnee(t *testing.T) {
	// Lower service variability → less queueing → higher throughput at
	// moderate population. Compare CV²=1 (exact exponential) with
	// CV²=0.08 (the uniform-disk model).
	exp, err := BalancedCV(0, 4, 0, 0.2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	low, err := BalancedCV(0, 4, 0, 0.2, 1, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 8, 12} {
		if low.Throughput(n) <= exp.Throughput(n) {
			t.Errorf("n=%d: low-CV throughput %v should exceed exponential %v",
				n, low.Throughput(n), exp.Throughput(n))
		}
	}
	// Asymptote unchanged.
	if math.Abs(low.MaxThroughput()-exp.MaxThroughput()) > 1e-12 {
		t.Error("CV correction must not change the bottleneck bound")
	}
	// Min MPL for 95% should shrink accordingly.
	if low.MinMPLForFraction(0.95, 500) >= exp.MinMPLForFraction(0.95, 500) {
		t.Error("low-CV min MPL should be below the exponential one")
	}
}

func TestSeidmannMultiCPUSaturatesEarly(t *testing.T) {
	// A 2-CPU pool modeled with Seidmann's decomposition reaches near
	// max throughput at a small population — unlike two independent
	// FCFS stations with random routing.
	pool, err := BalancedCV(2, 0, 0.02, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	xmax := 2 / 0.02
	// The decomposition's bottleneck bound is 1/(D/c) = c/D.
	if math.Abs(pool.MaxThroughput()-xmax) > 1e-9 {
		t.Fatalf("max throughput = %v, want %v", pool.MaxThroughput(), xmax)
	}
	if got := pool.Throughput(4); got < 0.85*xmax {
		t.Errorf("X(4) = %v, want >= 85%% of %v with flexible sharing", got, xmax)
	}
	if m := pool.MinMPLForFraction(0.95, 100); m > 8 {
		t.Errorf("min MPL for 95%% on 2 flexible CPUs = %d, want small", m)
	}
}

func TestBalancedCVMixedResources(t *testing.T) {
	nw, err := BalancedCV(2, 4, 0.02, 0.04, 1, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	// Stations: cpu, cpu-parallel (delay), 4 disks.
	if len(nw.Stations) != 6 {
		t.Fatalf("stations = %d, want 6", len(nw.Stations))
	}
	delays := 0
	for _, s := range nw.Stations {
		if s.Kind == Delay {
			delays++
		}
	}
	if delays != 1 {
		t.Errorf("delay stations = %d, want 1 (cpu-parallel)", delays)
	}
	// Sanity: monotone and bounded.
	prev := 0.0
	for n := 1; n <= 40; n++ {
		x := nw.Throughput(n)
		if x < prev-1e-9 {
			t.Fatalf("throughput decreased at n=%d", n)
		}
		if x > nw.MaxThroughput()+1e-9 {
			t.Fatalf("throughput exceeded bound at n=%d", n)
		}
		prev = x
	}
}

func TestQueueFactor(t *testing.T) {
	if f := (Station{}).residualFactor(); f != 1 {
		t.Errorf("default residual factor = %v, want 1", f)
	}
	if f := (Station{ServiceCV2: 0.08}).residualFactor(); math.Abs(f-0.54) > 1e-12 {
		t.Errorf("CV²=0.08 residual factor = %v, want 0.54", f)
	}
	if f := (Station{ServiceCV2: 3}).residualFactor(); f != 2 {
		t.Errorf("CV²=3 residual factor = %v, want 2", f)
	}
}

package experiments

// Oracle cross-validation: the discrete-event simulator checked
// against the paper's own analytic models on workloads where those
// models are EXACT, so a disagreement is a bug, not an approximation.
//
// The vehicle is a synthetic workload stripped to one exponential CPU
// burst per transaction — no page accesses (no disk), no lock
// contention (unique cold keys, shared mode), a zero-cost commit log —
// so the DBMS reduces to its CPU: a processor-sharing multi-core
// station. Two classical results then pin the simulator down:
//
//   - Closed machine-repair (M/M/1//N with exponential think): exact
//     MVA over {think delay, CPU queueing} gives the throughput at
//     every population. PS vs FCFS does not matter — the network is
//     product-form either way.
//   - Open M/M/c: with memoryless service, the number-in-system
//     process under egalitarian PS across c cores is the same
//     birth-death chain as FCFS M/M/c (total service rate min(n,c)·μ),
//     so the Erlang-C mean response time applies verbatim.

import (
	"math"
	"testing"

	"extsched/internal/dist"
	"extsched/internal/queueing/mmc"
	"extsched/internal/queueing/mva"
	"extsched/internal/runner"
	"extsched/internal/workload"
)

// oracleSpec is the analytically tractable workload: one transaction
// type, one op, exponential CPU demand with the given mean, nothing
// else.
func oracleSpec(meanDemand float64) workload.Spec {
	return workload.Spec{
		Name:      "oracle-exp",
		Benchmark: "synthetic",
		Types: []workload.TxnType{{
			Name: "unit", Prob: 1, Ops: 1,
			CPUPerOp: dist.NewExponential(meanDemand),
			// PagesPerOp 0: no buffer pool traffic, no disk I/O.
			// WriteFrac 0 + HotKeyProb 0: shared locks on unique cold
			// keys — granted instantly, no contention, no deadlocks.
		}},
		DBPages:         100,
		HotFrac:         0.2,
		HotAccess:       0.8,
		BufferPoolPages: 128,
		DiskService:     dist.NewDeterministic(0.001),
		// A zero-cost commit log write keeps the log device out of the
		// response time (the analytic models know only the CPU).
		LogService: dist.NewDeterministic(0),
		Clients:    100,
	}
}

func oracleSetup(t *testing.T, cpus int, meanDemand float64) workload.Setup {
	t.Helper()
	spec := oracleSpec(meanDemand)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return workload.Setup{Workload: spec, CPUs: cpus, Disks: 1}
}

// TestOracleClosedVsMVA drives the closed machine-repair system — N
// clients, exponential think Z, one PS CPU — and requires the measured
// throughput to match exact MVA within 2% at three population points:
// below the knee, at it, and deep in saturation.
func TestOracleClosedVsMVA(t *testing.T) {
	const (
		demand = 0.01 // mean service, s
		think  = 0.1  // mean think, s
	)
	setup := oracleSetup(t, 1, demand)
	nw, err := mva.NewNetwork([]mva.Station{
		{Name: "think", Demand: think, Kind: mva.Delay},
		{Name: "cpu", Demand: demand}, // CV²=0 means exponential: exact MVA
	})
	if err != nil {
		t.Fatal(err)
	}
	// Populations around the knee N* = (Z+D)/D = 11. The nightly soak
	// (no -short) extends the sweep deeper into saturation and doubles
	// the measured horizon; PR CI runs the -short bounds so the test
	// step stays fast.
	pops := []int{4, 12, 30}
	horizon := 2000.0
	if !testing.Short() {
		pops = append(pops, 60, 100)
		horizon = 4000
	}
	for _, n := range pops {
		out, err := RunPhases(setup, 0, nil, workload.DBOptions{},
			RunOpts{Seed: 3, Warmup: 1, Measure: 1, Clients: n}, // explicit spec below
			runner.Spec{
				Warmup: 100,
				Phases: []runner.Phase{{
					Kind: runner.KindClosed, Clients: n, ThinkTime: think, Duration: horizon,
				}},
			})
		if err != nil {
			t.Fatal(err)
		}
		sim := out.Total.Throughput()
		model := nw.Throughput(n)
		relErr := math.Abs(sim-model) / model
		t.Logf("N=%2d: sim %8.3f tx/s, MVA %8.3f tx/s, err %.2f%% (%d completions)",
			n, sim, model, 100*relErr, out.Total.Completed)
		if relErr > 0.02 {
			t.Errorf("N=%d: sim throughput %.3f vs MVA %.3f — %.2f%% off, want <= 2%%",
				n, sim, model, 100*relErr)
		}
	}
}

// TestOracleOpenVsMMC drives the open system — Poisson arrivals into a
// 2-core PS CPU with exponential service — and requires the measured
// mean response time to match the M/M/c closed form within the CI-
// derived tolerance (never looser than 5%).
func TestOracleOpenVsMMC(t *testing.T) {
	const (
		demand = 0.01
		cpus   = 2
		rho    = 0.7
	)
	setup := oracleSetup(t, cpus, demand)
	p := mmc.Params{Lambda: rho * float64(cpus) / demand, Mu: 1 / demand, Servers: cpus}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	model := p.MeanResponse()
	horizon := 2000.0
	if !testing.Short() {
		horizon = 6000 // nightly soak: 3x the arrivals, tighter CI
	}
	out, err := RunPhases(setup, 0, nil, workload.DBOptions{},
		RunOpts{Seed: 5, Warmup: 1, Measure: 1},
		runner.Spec{
			Warmup: 100,
			Phases: []runner.Phase{{
				Kind: runner.KindOpen, Lambda: p.Lambda, Duration: horizon,
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	sim := out.Total.All.Mean()
	// Response times of successive arrivals are positively correlated,
	// so inflate the iid CI half-width by a safety factor; the floor
	// keeps the assertion meaningful if the CI collapses.
	ci := out.Total.All.CIHalfWidth(0.95)
	tol := math.Max(5*ci, 0.05*model)
	t.Logf("M/M/%d rho=%.2f: sim E[T]=%.5fs, model %.5fs, |diff|=%.5fs, tol %.5fs (%d completions)",
		cpus, rho, sim, model, math.Abs(sim-model), tol, out.Total.Completed)
	if math.Abs(sim-model) > tol {
		t.Errorf("mean response %.5fs vs M/M/%d %.5fs: |diff| %.5f exceeds tolerance %.5f",
			sim, cpus, model, math.Abs(sim-model), tol)
	}
	// The queueing delay itself must also be visible: the sim is not
	// trivially passing because waiting is negligible.
	if sim <= demand {
		t.Errorf("mean response %.5fs not above the service time %.3fs — no queueing observed", sim, demand)
	}
}

package dbms

import (
	"math"
	"testing"

	"extsched/internal/dist"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
)

func mustDB(t *testing.T, eng *sim.Engine, cfg Config) *DB {
	t.Helper()
	db, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func cpuOnlyTxn(work float64) TxnProfile {
	return TxnProfile{Ops: []Op{{Key: 1, Write: false, CPUWork: work}}}
}

func TestSingleCPUOnlyTxn(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0.001),
	})
	var res Result
	done := false
	db.Exec(cpuOnlyTxn(0.1), func(r Result) { res = r; done = true })
	eng.RunAll()
	if !done {
		t.Fatal("transaction never committed")
	}
	// 0.1 CPU + 0.001 log.
	if math.Abs(res.InsideTime-0.101) > 1e-9 {
		t.Errorf("inside time = %v, want 0.101", res.InsideTime)
	}
	if res.Restarts != 0 {
		t.Errorf("restarts = %d, want 0", res.Restarts)
	}
	if db.Inside() != 0 {
		t.Errorf("inside = %d after commit", db.Inside())
	}
	if db.Stats().Committed != 1 {
		t.Errorf("committed = %d", db.Stats().Committed)
	}
}

func TestCPUSpeedScales(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 1, CPUSpeed: 2,
		LogService: dist.NewDeterministic(0),
	})
	var rt float64
	db.Exec(cpuOnlyTxn(1.0), func(r Result) { rt = r.InsideTime })
	eng.RunAll()
	if math.Abs(rt-0.5) > 1e-9 {
		t.Errorf("inside time = %v, want 0.5 at 2x speed", rt)
	}
}

func TestBufferMissCausesIO(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 1,
		BufferPoolPages: 10,
		DiskService:     dist.NewDeterministic(0.02),
		LogService:      dist.NewDeterministic(0),
	})
	var rt float64
	profile := TxnProfile{Ops: []Op{{Key: 1, CPUWork: 0.01, Pages: []uint64{42}}}}
	db.Exec(profile, func(r Result) { rt = r.InsideTime })
	eng.RunAll()
	// 0.01 CPU + 0.02 IO (cold miss).
	if math.Abs(rt-0.03) > 1e-9 {
		t.Errorf("inside time = %v, want 0.03", rt)
	}
	st := db.Stats()
	if st.PoolMiss != 1 || st.PoolHits != 0 {
		t.Errorf("pool hits/misses = %d/%d, want 0/1", st.PoolHits, st.PoolMiss)
	}
	// Second txn touching the same page hits.
	var rt2 float64
	db.Exec(profile, func(r Result) { rt2 = r.InsideTime })
	eng.RunAll()
	if math.Abs(rt2-0.01) > 1e-9 {
		t.Errorf("second inside time = %v, want 0.01 (hit)", rt2)
	}
}

func TestWriteConflictSerializes(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1,
		LogService: dist.NewDeterministic(0),
	})
	prof := TxnProfile{Ops: []Op{{Key: 7, Write: true, CPUWork: 0.1}}}
	var t1, t2 float64
	db.Exec(prof, func(r Result) { t1 = eng.Now() })
	db.Exec(prof, func(r Result) { t2 = eng.Now() })
	eng.RunAll()
	// Even with 2 CPUs, X-lock conflict forces serial execution:
	// second commits ~0.2, not ~0.1.
	first, second := math.Min(t1, t2), math.Max(t1, t2)
	if math.Abs(first-0.1) > 1e-9 {
		t.Errorf("first commit at %v, want 0.1", first)
	}
	if math.Abs(second-0.2) > 1e-9 {
		t.Errorf("second commit at %v, want 0.2 (serialized)", second)
	}
}

func TestURSkipsReadLocks(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1, Isolation: UR,
		LogService: dist.NewDeterministic(0),
	})
	writer := TxnProfile{Ops: []Op{{Key: 7, Write: true, CPUWork: 0.5}}}
	reader := TxnProfile{Ops: []Op{{Key: 7, Write: false, CPUWork: 0.1}}}
	var readerDone float64
	db.Exec(writer, func(Result) {})
	db.Exec(reader, func(Result) { readerDone = eng.Now() })
	eng.RunAll()
	// Under UR the reader never blocks on the writer's X lock.
	if math.Abs(readerDone-0.1) > 1e-9 {
		t.Errorf("UR reader done at %v, want 0.1 (no blocking)", readerDone)
	}
}

func TestRRReaderBlocksOnWriter(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1, Isolation: RR,
		LogService: dist.NewDeterministic(0),
	})
	writer := TxnProfile{Ops: []Op{{Key: 7, Write: true, CPUWork: 0.5}}}
	reader := TxnProfile{Ops: []Op{{Key: 7, Write: false, CPUWork: 0.1}}}
	var readerDone float64
	db.Exec(writer, func(Result) {})
	db.Exec(reader, func(Result) { readerDone = eng.Now() })
	eng.RunAll()
	// Under RR the reader waits for the writer's commit at 0.5.
	if math.Abs(readerDone-0.6) > 1e-9 {
		t.Errorf("RR reader done at %v, want 0.6 (blocked)", readerDone)
	}
}

func TestDeadlockRestartsAndCommits(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1,
		LogService:     dist.NewDeterministic(0),
		RestartBackoff: dist.NewDeterministic(0.001),
	})
	// Two txns locking (1 then 2) and (2 then 1) with CPU work between:
	// guaranteed deadlock.
	p1 := TxnProfile{Ops: []Op{
		{Key: 1, Write: true, CPUWork: 0.1},
		{Key: 2, Write: true, CPUWork: 0.1},
	}}
	p2 := TxnProfile{Ops: []Op{
		{Key: 2, Write: true, CPUWork: 0.1},
		{Key: 1, Write: true, CPUWork: 0.1},
	}}
	committed := 0
	restarts := 0
	db.Exec(p1, func(r Result) { committed++; restarts += r.Restarts })
	db.Exec(p2, func(r Result) { committed++; restarts += r.Restarts })
	eng.RunAll()
	if committed != 2 {
		t.Fatalf("committed = %d, want 2", committed)
	}
	if restarts < 1 {
		t.Errorf("expected at least one restart, got %d", restarts)
	}
	if db.Stats().Aborted < 1 {
		t.Errorf("aborted = %d, want >= 1", db.Stats().Aborted)
	}
	if db.Inside() != 0 {
		t.Errorf("inside = %d after drain", db.Inside())
	}
}

func TestPOWPreemptionRestartsVictim(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1,
		LockPolicy:     lockmgr.PriorityFIFO,
		POW:            true,
		LogService:     dist.NewDeterministic(0),
		RestartBackoff: dist.NewDeterministic(0.001),
	})
	// Low txn takes key 1 then blocks on key 2 (held by a long, low
	// txn). High txn then wants key 1 → POW preempts the first low txn.
	blocker := TxnProfile{Ops: []Op{{Key: 2, Write: true, CPUWork: 1.0}}}
	lowVictim := TxnProfile{Ops: []Op{
		{Key: 1, Write: true, CPUWork: 0.01},
		{Key: 2, Write: true, CPUWork: 0.01},
	}}
	high := TxnProfile{
		Ops:   []Op{{Key: 1, Write: true, CPUWork: 0.01}},
		Class: lockmgr.High,
	}
	var highDone float64
	committed := 0
	db.Exec(blocker, func(Result) { committed++ })
	eng.After(0.05, func() { db.Exec(lowVictim, func(Result) { committed++ }) })
	eng.After(0.1, func() { db.Exec(high, func(Result) { highDone = eng.Now(); committed++ }) })
	eng.RunAll()
	if committed != 3 {
		t.Fatalf("committed = %d, want 3", committed)
	}
	// High should finish quickly (≈0.11), not wait for the 1s blocker.
	if highDone > 0.3 {
		t.Errorf("high committed at %v, want quickly after 0.1 via preemption", highDone)
	}
	if db.Stats().Lock.Preemptions < 1 {
		t.Errorf("preemptions = %d, want >= 1", db.Stats().Lock.Preemptions)
	}
}

func TestCPUPriorityWeights(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 1,
		CPUPriority:   true,
		HighCPUWeight: 3,
		LowCPUWeight:  1,
		LogService:    dist.NewDeterministic(0),
	})
	low := TxnProfile{Ops: []Op{{Key: 1, CPUWork: 1.5}}, Class: lockmgr.Low}
	high := TxnProfile{Ops: []Op{{Key: 2, CPUWork: 1.5}}, Class: lockmgr.High}
	var tLow, tHigh float64
	db.Exec(low, func(Result) { tLow = eng.Now() })
	db.Exec(high, func(Result) { tHigh = eng.Now() })
	eng.RunAll()
	// Weight 3:1 on one core: high at 3/4 rate finishes 1.5/0.75 = 2.0;
	// low then has 1.5-0.5=1.0 left → 3.0.
	if math.Abs(tHigh-2.0) > 1e-9 {
		t.Errorf("high done at %v, want 2.0", tHigh)
	}
	if math.Abs(tLow-3.0) > 1e-9 {
		t.Errorf("low done at %v, want 3.0", tLow)
	}
}

func TestMultiOpTxnLockAccumulation(t *testing.T) {
	// Strict 2PL: all locks held to commit. A second txn needing the
	// FIRST op's key of a 3-op txn waits for full commit.
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1,
		LogService: dist.NewDeterministic(0),
	})
	long := TxnProfile{Ops: []Op{
		{Key: 1, Write: true, CPUWork: 0.1},
		{Key: 2, Write: true, CPUWork: 0.1},
		{Key: 3, Write: true, CPUWork: 0.1},
	}}
	short := TxnProfile{Ops: []Op{{Key: 1, Write: true, CPUWork: 0.01}}}
	var shortDone float64
	db.Exec(long, func(Result) {})
	db.Exec(short, func(Result) { shortDone = eng.Now() })
	eng.RunAll()
	if shortDone < 0.3 {
		t.Errorf("short committed at %v, want >= 0.3 (after long's commit)", shortDone)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0),
	})
	db.Exec(cpuOnlyTxn(1.0), func(Result) {})
	eng.RunAll()
	if u := db.CPUUtilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("CPU utilization = %v, want 1.0", u)
	}
	if u := db.DiskUtilization(); u != 0 {
		t.Errorf("disk utilization = %v, want 0", u)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{CPUs: 0, Disks: 1}); err == nil {
		t.Error("zero CPUs accepted")
	}
	if _, err := New(eng, Config{CPUs: 1, Disks: 0}); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := New(eng, Config{CPUs: 1, Disks: 1, CPUSpeed: -1}); err == nil {
		t.Error("negative CPU speed accepted")
	}
}

func TestEmptyProfilePanics(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{CPUs: 1, Disks: 1})
	defer func() {
		if recover() == nil {
			t.Error("empty profile did not panic")
		}
	}()
	db.Exec(TxnProfile{}, func(Result) {})
}

func TestHighConcurrencyDrainInvariant(t *testing.T) {
	// Randomized: many concurrent conflicting transactions; all must
	// commit exactly once and the engine must fully drain.
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 2,
		BufferPoolPages: 50,
		DiskService:     dist.NewExponential(0.005),
		LogService:      dist.NewDeterministic(0.001),
		RestartBackoff:  dist.NewDeterministic(0.002),
		Seed:            11,
	})
	g := sim.NewRNG(12, 0)
	const n = 300
	committed := 0
	for i := 0; i < n; i++ {
		nOps := 1 + g.IntN(4)
		var ops []Op
		for j := 0; j < nOps; j++ {
			ops = append(ops, Op{
				Key:     uint64(g.IntN(20)), // hot keys → conflicts & deadlocks
				Write:   g.IntN(2) == 0,
				CPUWork: 0.001 + 0.01*g.Float64(),
				Pages:   []uint64{uint64(g.IntN(500))},
			})
		}
		class := lockmgr.Low
		if g.IntN(10) == 0 {
			class = lockmgr.High
		}
		delay := g.Float64() * 2
		prof := TxnProfile{Ops: ops, Class: class}
		eng.After(delay, func() {
			db.Exec(prof, func(Result) { committed++ })
		})
	}
	eng.RunAll()
	if committed != n {
		t.Fatalf("committed = %d, want %d", committed, n)
	}
	if db.Inside() != 0 {
		t.Errorf("inside = %d after drain", db.Inside())
	}
	if db.Stats().Committed != n {
		t.Errorf("stats.Committed = %d, want %d", db.Stats().Committed, n)
	}
}

package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/sim"
)

func TestParsePolicyName(t *testing.T) {
	good := []struct {
		name string
		base string
		d    int
	}{
		{"", "", 0},
		{"rr", "rr", 0},
		{"jsq", "jsq", 0},
		{"lwl", "lwl", 0},
		{"affinity", "affinity", 0},
		{"jsq-d", "jsq-d", 2},
		{"lwl-d", "lwl-d", 2},
		{"jsq-d:3", "jsq-d", 3},
		{"jsq-d:1", "jsq-d", 1},
		{"lwl-d:16", "lwl-d", 16},
	}
	for _, g := range good {
		base, d, err := ParsePolicyName(g.name)
		if err != nil || base != g.base || d != g.d {
			t.Errorf("ParsePolicyName(%q) = (%q,%d,%v), want (%q,%d,nil)", g.name, base, d, err, g.base, g.d)
		}
	}
	bad := []string{"jsq-d:0", "jsq-d:-2", "jsq-d:x", "jsq-d:", "lwl-d:1.5", "rr:3", "jsq:2", "bogus", "jsq-d:0x2"}
	for _, name := range bad {
		if _, _, err := ParsePolicyName(name); err == nil {
			t.Errorf("ParsePolicyName(%q) accepted", name)
		}
		if _, err := NewPolicy(name); err == nil {
			t.Errorf("NewPolicy(%q) accepted", name)
		}
	}
}

// TestSampledNameRoundTrip: the reported name re-parses to the same
// policy (what keeps round-tripped scenario JSON stable).
func TestSampledNameRoundTrip(t *testing.T) {
	for _, name := range []string{"jsq-d", "jsq-d:3", "lwl-d", "lwl-d:5"} {
		p, err := NewPolicySeeded(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewPolicySeeded(p.Name(), 1)
		if err != nil {
			t.Fatalf("round trip %q -> %q: %v", name, p.Name(), err)
		}
		if q.Name() != p.Name() {
			t.Errorf("round trip %q -> %q -> %q", name, p.Name(), q.Name())
		}
	}
}

// TestSampledPickIsBestOfSample is the whitebox core property: over
// random load vectors, the pick is always a member of the drawn sample,
// beats every other sampled member under the policy's criterion, and
// ties break to the lowest member index.
func TestSampledPickIsBestOfSample(t *testing.T) {
	for _, name := range []string{"jsq-d:3", "lwl-d:3"} {
		p, err := NewPolicySeeded(name, 99)
		if err != nil {
			t.Fatal(err)
		}
		sp := p.(*Sampled)
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 3000; trial++ {
			loads := make([]Load, 1+rng.Intn(40))
			for i := range loads {
				loads[i] = Load{Backlog: rng.Intn(6), Work: rng.Float64() * 10, Speed: 0.25 + rng.Float64()}
			}
			pick := sp.Pick(loads, core.ClassLow, rng.Float64())
			inSample := false
			for _, s := range sp.samp {
				if s == pick {
					inSample = true
				}
				if sp.better(loads[s], loads[pick]) {
					t.Fatalf("%s trial %d: pick %d (%+v) beaten by sampled %d (%+v)",
						name, trial, pick, loads[pick], s, loads[s])
				}
				if !sp.better(loads[pick], loads[s]) && !sp.better(loads[s], loads[pick]) && s < pick {
					t.Fatalf("%s trial %d: pick %d ties sampled %d but is not lowest-index",
						name, trial, pick, s)
				}
			}
			if !inSample {
				t.Fatalf("%s trial %d: pick %d not in sample %v", name, trial, pick, sp.samp)
			}
			if want := min(sp.D(), len(loads)); len(sp.samp) < want {
				t.Fatalf("%s trial %d: sample %v smaller than min(d,n)=%d", name, trial, sp.samp, want)
			}
		}
	}
}

// TestSampledSmallFleetExact: with n <= 2d the policy full-scans, so it
// must agree with exact JSQ (and consume no random draws — verified by
// the pick staying identical across fresh instances with different
// seeds).
func TestSampledSmallFleetExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var exact JSQ
	for trial := 0; trial < 1000; trial++ {
		loads := make([]Load, 1+rng.Intn(4)) // n <= 4 = 2d for d=2
		for i := range loads {
			loads[i] = Load{Backlog: rng.Intn(6), Speed: 1}
		}
		p1, _ := NewPolicySeeded("jsq-d", 1)
		p2, _ := NewPolicySeeded("jsq-d", 2)
		want := exact.Pick(loads, core.ClassLow, 0)
		if got := p1.Pick(loads, core.ClassLow, 0); got != want {
			t.Fatalf("trial %d: small-fleet jsq-d picked %d, exact jsq %d (loads %+v)", trial, got, want, loads)
		}
		if got := p2.Pick(loads, core.ClassLow, 0); got != want {
			t.Fatalf("trial %d: seed changed small-fleet pick (loads %+v)", trial, loads)
		}
	}
}

// TestSampledDeterministicReplay: equal seeds replay the identical pick
// sequence over an identical load history; a different seed diverges
// somewhere (the sampling really is seeded, not time- or map-ordered).
func TestSampledDeterministicReplay(t *testing.T) {
	mkLoads := func(rng *rand.Rand) []Load {
		loads := make([]Load, 50)
		for i := range loads {
			loads[i] = Load{Backlog: rng.Intn(10), Work: rng.Float64(), Speed: 1}
		}
		return loads
	}
	run := func(seed uint64) []int {
		p, _ := NewPolicySeeded("jsq-d:2", seed)
		rng := rand.New(rand.NewSource(77))
		out := make([]int, 400)
		for i := range out {
			out[i] = p.Pick(mkLoads(rng), core.ClassLow, 0)
		}
		return out
	}
	a, b, c := run(1), run(1), run(2)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pick %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 1 and 2 produced identical 400-pick sequences — sampling stream ignores the seed?")
	}
}

// benchFleet builds n pick-only shards: real frontends (the pick path
// reads their queue/inflight counters) over nil backends, which is safe
// because the dry-run Pick never dispatches work.
func benchFleet(b *testing.B, n int, policy string) *Dispatcher {
	b.Helper()
	eng := sim.NewEngine()
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = Shard{FE: dbfe.New(eng, nil, 1, nil)}
	}
	p, err := NewPolicySeeded(policy, 42)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDispatcher(p, shards)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkDispatchPick measures the per-transaction routing decision
// in isolation (the dry-run Pick: no submission, no execution). The
// point of the matrix: full-scan jsq grows O(N) while jsq-d stays flat
// — at N=1000 the sampled pick must cost within 2x of its own N=8
// cost, and allocate nothing.
func BenchmarkDispatchPick(b *testing.B) {
	for _, n := range []int{8, 100, 1000} {
		for _, policy := range []string{"jsq", "jsq-d"} {
			b.Run(fmt.Sprintf("%s/n%d", policy, n), func(b *testing.B) {
				d := benchFleet(b, n, policy)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if d.Pick(core.ClassLow, 1) < 0 {
						b.Fatal("fleet down")
					}
				}
			})
		}
	}
}

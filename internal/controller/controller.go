// Package controller implements the paper's Section 4.3 feedback
// controller for tuning the MPL, augmented with the queueing-theoretic
// jump-start of Sections 4.1–4.2.
//
// The controller alternates observation and reaction phases. An
// observation window closes once it has seen enough completions (the
// paper found ~100 per window), the confidence interval on the mean
// response time is tight enough, and the system load is representative
// (an idle system says nothing about the MPL). The reaction compares
// the window's throughput and mean response time against references —
// the no-MPL optimum predicted by the models or measured by probing —
// and nudges the MPL by a small constant step: up when a target is
// violated, down when both targets are met with margin, holding (and
// declaring convergence) at the lowest feasible value. The jump-start
// from MVA (throughput) and the QBD response-time model gives the loop
// a close-to-optimal starting MPL, which is what makes small constant
// steps converge in under ten iterations.
//
// The loop is deliberately ignorant of what it tunes: it consumes a
// completion stream (Observe, called once per completed item) and
// drives anything that satisfies the Gate interface — the simulated
// DBMS frontend and the wall-clock live gate both do. Time comes from
// a sim.Clock, so one controller implementation serves deterministic
// virtual-time experiments and real traffic alike. All methods are
// safe for concurrent callers (live gates complete items from many
// goroutines at once).
package controller

import (
	"fmt"
	"sync"

	"extsched/internal/core"
	"extsched/internal/dist"
	"extsched/internal/queueing/mva"
	"extsched/internal/queueing/qbd"
	"extsched/internal/sim"
	"extsched/internal/stats"
)

// Gate is the MPL-limited system under control: a settable limit plus
// windowed completion metrics and the saturation signals the
// representative-load gate needs. *core.Frontend implements it for
// both the simulated DBMS and live traffic.
type Gate interface {
	// MPL returns the current limit.
	MPL() int
	// SetMPL changes the limit (the reaction phase's actuator).
	SetMPL(int)
	// Metrics snapshots the current observation window.
	Metrics() core.Metrics
	// ResetMetrics starts a fresh observation window.
	ResetMetrics()
	// QueueLen and Inside report instantaneous load (for the
	// representative-load gate).
	QueueLen() int
	Inside() int
}

// Targets are the DBA-specified tolerances.
type Targets struct {
	// MaxThroughputLoss is the largest acceptable fractional loss of
	// throughput versus the no-MPL optimum (e.g. 0.05).
	MaxThroughputLoss float64
	// MaxRTIncrease is the largest acceptable fractional increase of
	// overall mean response time versus the reference (e.g. 0.05).
	// Zero disables the response-time criterion.
	MaxRTIncrease float64
}

// Reference holds the "optimal" baselines the controller compares
// against: the throughput and mean response time of the system run
// without an MPL, obtained from the queueing models or a probe run.
type Reference struct {
	MaxThroughput float64
	// OptimalRT is the no-MPL mean response time. Zero disables the
	// response-time criterion.
	OptimalRT float64
}

// Config tunes the control loop.
type Config struct {
	Targets
	Reference Reference
	// MinObservations gates window close; default 100 (paper).
	MinObservations int
	// Confidence and MaxRelCI gate window close on the response-time
	// CI: half-width/mean <= MaxRelCI at the given confidence.
	// Defaults 0.95 and 0.15.
	Confidence float64
	MaxRelCI   float64
	// TputRelCI gates window close on the throughput estimate: the
	// relative CI half-width of the mean inter-completion time must
	// fall below it. A reaction that discriminates a 5% throughput
	// loss needs windows measured better than 5%; the default is
	// MaxThroughputLoss/2 (with a floor of 0.02), which is what makes
	// the loop immune to window noise. Windows are capped at
	// MaxWindow completions regardless.
	TputRelCI float64
	// MaxWindow caps a window's completions (default 50×MinObservations).
	MaxWindow int
	// Step is the base MPL adjustment per reaction; default 1.
	Step int
	// AdaptiveStep doubles the step while consecutive reactions move
	// in the same direction (capped at MaxStep) and resets it on a
	// reversal or hold. This recovers quickly when the queueing
	// jump-start misjudges the system; with an accurate jump-start it
	// never engages. Default true.
	AdaptiveStep *bool
	// MaxStep caps the adaptive step; default 16.
	MaxStep int
	// MinMPL / MaxMPL clamp the search range; defaults 1 and 200.
	MinMPL, MaxMPL int
	// HoldWindows is the number of consecutive no-change reactions
	// after which the controller declares convergence; default 2.
	HoldWindows int
	// DecreaseMargin: only lower the MPL when the throughput target
	// is met with this extra margin (fraction of the allowed slack),
	// providing the hysteresis that prevents oscillation. Default 0.5.
	DecreaseMargin float64
}

func (c Config) withDefaults() Config {
	if c.MinObservations <= 0 {
		c.MinObservations = 100
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.MaxRelCI == 0 {
		c.MaxRelCI = 0.15
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.AdaptiveStep == nil {
		on := true
		c.AdaptiveStep = &on
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 16
	}
	if c.MinMPL <= 0 {
		c.MinMPL = 1
	}
	if c.MaxMPL <= 0 {
		c.MaxMPL = 200
	}
	if c.HoldWindows <= 0 {
		c.HoldWindows = 2
	}
	if c.TputRelCI == 0 {
		c.TputRelCI = c.MaxThroughputLoss / 2
		if c.TputRelCI < 0.02 {
			c.TputRelCI = 0.02
		}
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 50 * c.MinObservations
	}
	if c.DecreaseMargin == 0 {
		c.DecreaseMargin = 0.5
	}
	return c
}

// Action describes a reaction decision.
type Action string

const (
	// Increase raised the MPL (a target was violated).
	Increase Action = "increase"
	// Decrease lowered the MPL (targets met with margin).
	Decrease Action = "decrease"
	// Hold kept the MPL (at the feasibility boundary).
	Hold Action = "hold"
)

// Decision records one completed observation/reaction iteration.
type Decision struct {
	Iteration  int
	MPL        int
	Throughput float64
	MeanRT     float64
	Action     Action
	// TputOK / RTOK record which targets the window satisfied.
	TputOK, RTOK bool
}

// Controller drives a Gate's MPL from its completion stream.
type Controller struct {
	mu        sync.Mutex
	clock     sim.Clock
	gate      Gate
	cfg       Config
	history   []Decision
	holdCount int
	converged bool
	// floor marks MPL values known to violate a target; the controller
	// will not descend into them again.
	floor int
	// step/lastAction implement the adaptive step size.
	step       int
	lastAction Action
	// interCompletion tracks this window's inter-completion times; its
	// CI gates the throughput estimate.
	interCompletion stats.Accumulator
	lastCompletion  float64
}

// New builds a controller over g and opens its first observation
// window (g.ResetMetrics). The gate's MPL should already be set to the
// jump-start value (see JumpStart). The caller owns the wiring: invoke
// Observe once per completion, e.g. from the gate's completion hook.
func New(clock sim.Clock, g Gate, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxThroughputLoss < 0 || cfg.MaxThroughputLoss >= 1 {
		return nil, fmt.Errorf("controller: MaxThroughputLoss %v outside [0,1)", cfg.MaxThroughputLoss)
	}
	if cfg.Reference.MaxThroughput <= 0 {
		return nil, fmt.Errorf("controller: Reference.MaxThroughput required")
	}
	c := &Controller{clock: clock, gate: g, cfg: cfg, floor: cfg.MinMPL - 1, step: cfg.Step}
	g.ResetMetrics()
	return c, nil
}

// Converged reports whether the controller has settled.
func (c *Controller) Converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.converged
}

// Iterations returns the number of completed reactions.
func (c *Controller) Iterations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.history)
}

// History returns the reaction log.
func (c *Controller) History() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.history
}

// Observe consumes one completion event: it closes the observation
// window and reacts when the gates are satisfied. Call it once per
// completed item, from any goroutine.
func (c *Controller) Observe() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.converged {
		return
	}
	now := c.clock.Now()
	if c.lastCompletion > 0 {
		c.interCompletion.Add(now - c.lastCompletion)
	}
	c.lastCompletion = now
	m := c.gate.Metrics()
	if int(m.Completed) < c.cfg.MinObservations {
		return
	}
	if int(m.Completed) < c.cfg.MaxWindow {
		if m.All.RelativeCIHalfWidth(c.cfg.Confidence) > c.cfg.MaxRelCI {
			return
		}
		if c.interCompletion.RelativeCIHalfWidth(c.cfg.Confidence) > c.cfg.TputRelCI {
			return
		}
	}
	// Representative-load gate: an adjustment decision is meaningless
	// if the backend wasn't kept busy by offered load during the window.
	if c.gate.QueueLen() == 0 && c.gate.Inside() < c.gate.MPL() {
		// Not saturated right now; restart the window rather than
		// react to a possibly idle period.
		c.resetWindow()
		return
	}
	c.react(m)
	c.resetWindow()
}

// resetWindow starts a fresh observation window.
func (c *Controller) resetWindow() {
	c.gate.ResetMetrics()
	c.interCompletion.Reset()
	c.lastCompletion = 0
}

// react implements the reaction phase. Called with c.mu held.
func (c *Controller) react(m core.Metrics) {
	cfg := c.cfg
	tput := m.Throughput()
	rt := m.All.Mean()
	tputTarget := (1 - cfg.MaxThroughputLoss) * cfg.Reference.MaxThroughput
	tputOK := tput >= tputTarget
	rtOK := true
	if cfg.MaxRTIncrease > 0 && cfg.Reference.OptimalRT > 0 {
		rtOK = rt <= (1+cfg.MaxRTIncrease)*cfg.Reference.OptimalRT
	}
	mpl := c.gate.MPL()
	action := Hold
	switch {
	case !tputOK || !rtOK:
		// A target is violated: the current MPL is infeasible. Mark it
		// as the floor and step up.
		if mpl > c.floor {
			c.floor = mpl
		}
		step := c.nextStep(Increase)
		if mpl+step > cfg.MaxMPL {
			step = cfg.MaxMPL - mpl
		}
		if step > 0 {
			action = Increase
			c.gate.SetMPL(mpl + step)
		}
	case mpl-1 > c.floor && c.comfortably(tput, tputTarget):
		// Both targets met with margin and the next value down is not
		// known-infeasible: probe lower.
		step := c.nextStep(Decrease)
		if mpl-step <= c.floor {
			step = mpl - c.floor - 1
		}
		action = Decrease
		c.gate.SetMPL(mpl - step)
	default:
		action = Hold
	}
	c.lastAction = action
	c.history = append(c.history, Decision{
		Iteration:  len(c.history) + 1,
		MPL:        mpl,
		Throughput: tput,
		MeanRT:     rt,
		Action:     action,
		TputOK:     tputOK,
		RTOK:       rtOK,
	})
	if action == Hold {
		c.holdCount++
		if c.holdCount >= cfg.HoldWindows {
			c.converged = true
		}
	} else {
		c.holdCount = 0
	}
}

// nextStep returns the step for an intended action, doubling while the
// direction persists (when AdaptiveStep) and resetting otherwise.
func (c *Controller) nextStep(intended Action) int {
	if !*c.cfg.AdaptiveStep {
		return c.cfg.Step
	}
	if c.lastAction == intended {
		c.step *= 2
		if c.step > c.cfg.MaxStep {
			c.step = c.cfg.MaxStep
		}
	} else {
		c.step = c.cfg.Step
	}
	return c.step
}

// comfortably reports whether tput exceeds the target with hysteresis
// margin, so that a decrease is unlikely to immediately bounce back.
func (c *Controller) comfortably(tput, target float64) bool {
	slack := c.cfg.MaxThroughputLoss * c.cfg.Reference.MaxThroughput
	return tput >= target+c.cfg.DecreaseMargin*slack
}

// JumpStartInput feeds the queueing models that pick the starting MPL.
type JumpStartInput struct {
	CPUs, Disks int
	// CPUDemand / IODemand are per-transaction demand estimates in
	// seconds (workload.Setup.Demands).
	CPUDemand, IODemand float64
	// CPUCV2 / DiskCV2 are the per-visit service variabilities of the
	// devices (zero = 1, exponential). Low-variance disks (seek-bound
	// drives) saturate at lower MPLs, and the model should know.
	CPUCV2, DiskCV2 float64
	// ThroughputFraction is 1 − MaxThroughputLoss.
	ThroughputFraction float64
	// Open-system response-time model inputs; zero values skip the RT
	// bound (closed experiments).
	Lambda      float64 // offered arrival rate
	MeanDemand  float64 // mean total service demand
	DemandC2    float64 // squared coefficient of variation of demand
	RTTolerance float64 // acceptable RT increase over PS, e.g. 0.1
	// MaxMPL caps the search; default 200.
	MaxMPL int
}

// JumpStart returns the model-predicted starting MPL: the max of the
// MVA throughput bound (Section 4.1) and the QBD response-time bound
// (Section 4.2).
func JumpStart(in JumpStartInput) (int, error) {
	if in.MaxMPL <= 0 {
		in.MaxMPL = 200
	}
	if in.ThroughputFraction <= 0 || in.ThroughputFraction > 1 {
		return 0, fmt.Errorf("controller: ThroughputFraction %v outside (0,1]", in.ThroughputFraction)
	}
	cpuCV2, diskCV2 := in.CPUCV2, in.DiskCV2
	if cpuCV2 == 0 {
		cpuCV2 = 1
	}
	if diskCV2 == 0 {
		diskCV2 = 1
	}
	nw, err := mva.BalancedCV(in.CPUs, in.Disks, in.CPUDemand, in.IODemand, cpuCV2, diskCV2)
	if err != nil {
		return 0, fmt.Errorf("controller: jump-start model: %w", err)
	}
	start := nw.MinMPLForFraction(in.ThroughputFraction, in.MaxMPL)
	if start > in.MaxMPL {
		start = in.MaxMPL
	}
	if in.Lambda > 0 && in.MeanDemand > 0 && in.DemandC2 > 1 {
		rho := in.Lambda * in.MeanDemand
		if rho < 1 {
			tol := in.RTTolerance
			if tol <= 0 {
				tol = 0.1
			}
			job := dist.FitH2(in.MeanDemand, in.DemandC2)
			rtMPL, err := qbd.MinMPLForResponseTime(in.Lambda, job, tol, in.MaxMPL)
			if err == nil && rtMPL > start && rtMPL <= in.MaxMPL {
				start = rtMPL
			}
		}
	}
	if start < 1 {
		start = 1
	}
	return start, nil
}

package lockmgr

import (
	"testing"

	"extsched/internal/sim"
)

func TestPOWChainDoesNotCascade(t *testing.T) {
	// POW preempts only DIRECT low-priority holders of the requested
	// lock that are blocked elsewhere — not transitively.
	h := newHarness(PriorityFIFO, true)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Begin(3, Low)
	h.mgr.Begin(4, High)
	h.mgr.Acquire(1, 1, X, nil)       // 1 holds A
	h.mgr.Acquire(2, 2, X, nil)       // 2 holds B
	h.mgr.Acquire(3, 3, X, nil)       // 3 holds C
	h.mgr.Acquire(1, 2, X, func() {}) // 1 blocked on B
	h.mgr.Acquire(2, 3, X, func() {}) // 2 blocked on C
	h.mgr.Acquire(4, 1, X, func() {}) // High wants A: preempt 1 only
	h.eng.RunAll()
	if _, ok := h.aborts[1]; !ok {
		t.Error("direct blocked holder not preempted")
	}
	if _, ok := h.aborts[2]; ok {
		t.Error("POW cascaded to a transitive holder")
	}
	if _, ok := h.aborts[3]; ok {
		t.Error("POW cascaded to a transitive holder")
	}
}

func TestPOWSharedHolders(t *testing.T) {
	// Two low S-holders, both blocked elsewhere, high X request: both
	// preempted.
	h := newHarness(PriorityFIFO, true)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Begin(3, Low)
	h.mgr.Begin(4, High)
	h.mgr.Acquire(1, 1, S, nil)
	h.mgr.Acquire(2, 1, S, nil)
	h.mgr.Acquire(3, 2, X, nil)
	h.mgr.Acquire(1, 2, X, func() {}) // 1 blocked
	h.mgr.Acquire(2, 2, X, func() {}) // 2 blocked (queued behind 1)
	h.mgr.Acquire(4, 1, X, func() {})
	h.eng.RunAll()
	if len(h.aborts) != 2 {
		t.Errorf("aborts = %v, want both S holders preempted", h.aborts)
	}
}

func TestHighDoesNotPreemptWithoutPOW(t *testing.T) {
	h := newHarness(PriorityFIFO, false) // priority queues, no preemption
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Begin(3, High)
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 2, X, nil)
	h.mgr.Acquire(1, 2, X, func() {})
	h.mgr.Acquire(3, 1, X, func() {})
	h.eng.RunAll()
	if len(h.aborts) != 0 {
		t.Errorf("aborts = %v without POW, want none", h.aborts)
	}
}

func TestWaitsForIncludesQueuePredecessors(t *testing.T) {
	// Regression for the drain-deadlock bug: a waiter compatible with
	// holders but queued behind an incompatible request must appear in
	// the waits-for graph. Construct the three-party deadlock:
	//   A holds k2; C holds... see inline.
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)               // A
	h.mgr.Begin(2, Low)               // B
	h.mgr.Begin(3, Low)               // C
	h.mgr.Acquire(1, 1, S, nil)       // A holds k1 (S)
	h.mgr.Acquire(3, 2, X, nil)       // C holds k2 (X)
	h.mgr.Acquire(2, 1, X, func() {}) // B waits for k1 (blocked by A's S)
	h.mgr.Acquire(3, 1, S, func() {}) // C queues BEHIND B (no-bypass) though S∥S with A
	// Now A requests k2 (held by C): cycle A→C→B→A through the queue
	// edge C→B.
	h.mgr.Acquire(1, 2, X, func() {})
	h.eng.RunAll()
	if len(h.aborts) != 1 {
		t.Fatalf("aborts = %v, want the queue-edge cycle detected", h.aborts)
	}
	if _, ok := h.aborts[1]; !ok {
		t.Errorf("victim = %v, want the requester (txn 1)", h.aborts)
	}
}

func TestReleaseDuringQueueGrantsInOrder(t *testing.T) {
	// S batch then X then S: after the X holder leaves, the trailing S
	// must wait for the queued X (no-bypass) even though holders are
	// compatible.
	h := newHarness(FIFO, false)
	for i := TxnID(1); i <= 4; i++ {
		h.mgr.Begin(i, Low)
	}
	var order []int
	h.mgr.Acquire(1, 9, X, nil)
	h.mgr.Acquire(2, 9, S, func() { order = append(order, 2) })
	h.mgr.Acquire(3, 9, X, func() { order = append(order, 3) })
	h.mgr.Acquire(4, 9, S, func() { order = append(order, 4) })
	h.mgr.Release(1) // grants S(2) only
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("order = %v, want [2]", order)
	}
	h.mgr.Release(2) // grants X(3)
	if len(order) != 2 || order[1] != 3 {
		t.Fatalf("order = %v, want [2 3]", order)
	}
	h.mgr.Release(3) // grants S(4)
	if len(order) != 3 || order[2] != 4 {
		t.Fatalf("order = %v, want [2 3 4]", order)
	}
}

func TestPriorityFIFOStableWithinClass(t *testing.T) {
	h := newHarness(PriorityFIFO, false)
	for i := TxnID(1); i <= 5; i++ {
		class := Low
		if i == 3 || i == 5 {
			class = High
		}
		h.mgr.Begin(i, class)
	}
	var order []int
	h.mgr.Acquire(1, 5, X, nil)
	for _, id := range []TxnID{2, 3, 4, 5} {
		id := id
		h.mgr.Acquire(id, 5, X, func() { order = append(order, int(id)) })
	}
	// Release the current holder each round: grants cascade in priority
	// order (3, 5, 2, 4).
	h.mgr.Release(1)
	for len(order) > 0 && len(order) < 4 {
		h.mgr.Release(TxnID(order[len(order)-1]))
	}
	// Highs (3,5) first in arrival order, then lows (2,4).
	want := []int{3, 5, 2, 4}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRandomScheduleSerializability(t *testing.T) {
	// Weak serializability check: completed transactions' conflicting
	// key accesses never interleave — since we use strict 2PL, any two
	// committed txns that both X-touched a key must have disjoint
	// [firstGrant, release] intervals on it. We track grant/release
	// events and assert no overlap.
	eng := sim.NewEngine()
	type interval struct{ start, end float64 }
	intervals := map[uint64][]interval{} // key → X-hold intervals
	grantTimes := map[TxnID]map[uint64]float64{}
	var mgr *Manager
	mgr = New(eng, Config{OnAbort: func(id TxnID, _ AbortReason) {
		delete(grantTimes, id)
		mgr.Release(id)
	}})
	g := sim.NewRNG(31, 0)
	for round := 0; round < 300; round++ {
		id := TxnID(round + 1)
		mgr.Begin(id, Low)
		grantTimes[id] = map[uint64]float64{}
		keys := []uint64{uint64(g.IntN(6)), uint64(g.IntN(6))}
		hold := 0.01 + g.Float64()*0.05
		start := g.Float64() * 3
		eng.After(start, func() {
			acquireAll(eng, mgr, id, keys, 0, grantTimes, func() {
				eng.After(hold, func() {
					if gt, ok := grantTimes[id]; ok {
						for k, t0 := range gt {
							intervals[k] = append(intervals[k], interval{t0, eng.Now()})
						}
					}
					mgr.Release(id)
				})
			})
		})
	}
	eng.RunAll()
	for k, iv := range intervals {
		for i := 0; i < len(iv); i++ {
			for j := i + 1; j < len(iv); j++ {
				a, b := iv[i], iv[j]
				if a.start < b.end && b.start < a.end {
					t.Fatalf("key %d: X-hold intervals overlap: %+v vs %+v", k, a, b)
				}
			}
		}
	}
}

// acquireAll chains X acquisitions of keys[idx:] and then calls done.
func acquireAll(eng *sim.Engine, mgr *Manager, id TxnID, keys []uint64, idx int,
	grantTimes map[TxnID]map[uint64]float64, done func()) {
	if idx >= len(keys) {
		done()
		return
	}
	cont := func() {
		if gt, ok := grantTimes[id]; ok {
			if _, seen := gt[keys[idx]]; !seen {
				gt[keys[idx]] = eng.Now()
			}
		}
		acquireAll(eng, mgr, id, keys, idx+1, grantTimes, done)
	}
	if mgr.Acquire(id, keys[idx], X, cont) {
		cont()
	}
}

func newTimeoutHarness(timeout float64) *harness {
	h := &harness{eng: sim.NewEngine(), aborts: make(map[TxnID]AbortReason)}
	h.mgr = New(h.eng, Config{
		WaitTimeout: timeout,
		OnAbort: func(t TxnID, r AbortReason) {
			h.aborts[t] = r
			h.mgr.Release(t)
		},
	})
	return h
}

func TestWaitTimeoutAborts(t *testing.T) {
	h := newTimeoutHarness(0.5)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 1, X, func() {})
	h.eng.Run(1.0)
	if r, ok := h.aborts[2]; !ok || r != Timeout {
		t.Fatalf("aborts = %v, want txn 2 Timeout", h.aborts)
	}
	if h.mgr.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", h.mgr.Stats().Timeouts)
	}
}

func TestWaitTimeoutNotFiredWhenGranted(t *testing.T) {
	h := newTimeoutHarness(0.5)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	granted := false
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 1, X, func() { granted = true })
	h.eng.After(0.1, func() { h.mgr.Release(1) }) // grant before timeout
	h.eng.RunAll()
	if !granted {
		t.Fatal("not granted")
	}
	if len(h.aborts) != 0 {
		t.Errorf("aborts = %v after timely grant, want none", h.aborts)
	}
}

func TestWaitTimeoutDisabledByDefault(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 1, X, func() {})
	h.eng.Run(1e6)
	if len(h.aborts) != 0 {
		t.Errorf("aborts = %v without timeout config", h.aborts)
	}
}

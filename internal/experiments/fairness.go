package experiments

import (
	"fmt"

	"extsched/internal/core"
	"extsched/internal/fairness"
	"extsched/internal/lockmgr"
	"extsched/internal/runner"
	"extsched/internal/workload"
)

// fairnessOutcome is one configuration's run of the fairness figure.
type fairnessOutcome struct {
	out    runner.Outcome
	series Series
}

// victimP95s pulls the victim tenants' p95s out of a whole-run report
// (classes 0..victims-1; a victim that completed nothing reports 0).
func victimP95s(out runner.Outcome, victims int) []float64 {
	p := make([]float64, victims)
	for _, c := range out.Total.Classes {
		if int(c.Class) >= 1 && int(c.Class) <= victims {
			p[c.Class-1] = c.P95
		}
	}
	return p
}

// FairnessFigure is the multi-tenant isolation headline: three equal
// "victim" tenants run at a comfortable aggregate load, then an
// aggressor tenant joins at ten times a victim's arrival rate, pushing
// the offered load far past capacity. Two contended runs face off — the
// plain shared gate (fairness off: one FIFO queue, one global MPL) and
// the same gate under the weighted max-min fairness controller
// (fairness on: the MPL partitioned per tenant, at most one slot moved
// per observation window, every tenant floored at one slot).
//
// The fairness-on run uses the controller's strict mode: limits are
// hard caps, not work-conserving hints. Per-dispatch borrowing would
// hand every slot the victims leave idle to the aggressor's backlog,
// keeping the backend saturated and inflating the victims' in-DBMS
// times — with a hard cap the aggressor holds exactly its floor slot,
// and unused capacity changes hands only through the controller.
// Victims carry weight 8 to the aggressor's 1, so the initial
// weighted partition already pins the aggressor at the one-slot floor.
//
// The point the figure makes: with the shared gate the aggressor's
// backlog lands on everyone — the victims' p95s grow without bound
// with the queue — while the strict fairness partition caps the
// aggressor at its floor, so every victim's p95 stays within 2x of
// its no-aggressor baseline. The per-victim p95s of all three
// configurations are the series; the isolation verdict, the final
// tenant partition, and the aggressor's attained throughput land in
// the notes.
func FairnessFigure(setupID int, opts RunOpts) (*Figure, error) {
	return fairnessFigure(setupID, 16, 0.15, 8, 10, opts)
}

// fairnessFigure is FairnessFigure with the experiment's shape
// exposed: the fixed gate limit, each victim's arrival rate as a
// fraction of the reference capacity, the victims' fairness weight
// (the aggressor's is 1), and the aggressor's arrival rate in victim
// rates.
func fairnessFigure(setupID, mpl int, pvFrac, victimWeight float64, aggFactor int, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(setup)
	if opts.PercentileSamples <= 0 {
		opts.PercentileSamples = 4000
	}
	// Reference capacity from a no-MPL closed probe (the same probe
	// every controller figure uses).
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	ref := base.Throughput()
	if ref <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline throughput")
	}

	const victims = 3
	perVictim := pvFrac * ref // each victim's absolute arrival rate
	// The aggressor takes class 0: deferred-dispatch scans prefer
	// higher class IDs, so a borrowed slot never goes to deferred
	// aggressor work while a victim waits.
	names := map[core.Class]string{0: "aggressor", 1: "victim-a", 2: "victim-b", 3: "victim-c"}

	// Victim absolute rates are identical across configurations; only
	// the aggressor's share is added on top, so the baseline is the
	// correct no-aggressor reference for each victim.
	victimMix := make([]workload.TenantMix, victims)
	for i := range victimMix {
		victimMix[i] = workload.TenantMix{Class: lockmgr.Class(i + 1), Share: 1.0 / victims}
	}
	aggMix := make([]workload.TenantMix, victims+1)
	total := float64(victims + aggFactor)
	for i := 0; i < victims; i++ {
		aggMix[i] = workload.TenantMix{Class: lockmgr.Class(i + 1), Share: 1 / total}
	}
	aggMix[victims] = workload.TenantMix{Class: 0, Share: float64(aggFactor) / total}

	type config struct {
		label    string
		mix      []workload.TenantMix
		lambda   float64
		fairness bool
	}
	configs := []config{
		{"baseline", victimMix, float64(victims) * perVictim, false},
		{"aggressor fairness-off", aggMix, total * perVictim, false},
		{"aggressor fairness-on", aggMix, total * perVictim, true},
	}

	runOne := func(c config) (fairnessOutcome, error) {
		eng, db, fe, gen, err := buildStack(setup, mpl, nil, workload.DBOptions{}, opts)
		if err != nil {
			return fairnessOutcome{}, err
		}
		weights := make(map[core.Class]float64, len(c.mix))
		for _, m := range c.mix {
			cl := core.Class(m.Class)
			w := victimWeight
			if cl == 0 {
				w = 1
			}
			fe.RegisterClass(names[cl], w, 0)
			weights[cl] = w
		}
		if err := gen.SetMix(c.mix); err != nil {
			return fairnessOutcome{}, err
		}
		st := runner.Stack{
			Eng: eng, DB: db, FE: fe, Gen: gen, Seed: opts.Seed,
			PercentileSamples: opts.PercentileSamples,
			ClassNames:        names,
		}
		if c.fairness {
			// The runner attaches the controller at measure start; warm
			// up under the same initial weighted partition it will
			// install (Allocate is deterministic), so the measure window
			// never drains an unpartitioned warmup backlog.
			fe.SetClassLimits(fairness.Allocate(mpl, weights))
			fe.SetStrictPartition(true)
			st.Fairness = &runner.FairnessSpec{Weights: weights, Strict: true, MinObservations: 100, Hysteresis: 2}
		}
		spec := runner.Spec{
			Warmup: opts.Warmup,
			Phases: []runner.Phase{{
				Name: "contended", Kind: runner.KindOpen,
				Lambda: c.lambda, Duration: opts.Measure,
			}},
		}
		out, err := runner.Run(opts.ctx(), st, spec)
		if err != nil {
			return fairnessOutcome{}, err
		}
		o := fairnessOutcome{out: out}
		p95s := victimP95s(out, victims)
		o.series = Series{Name: "victim p95 " + c.label}
		for i, p := range p95s {
			o.series.X = append(o.series.X, float64(i))
			o.series.Y = append(o.series.Y, p)
		}
		return o, nil
	}

	// The three configurations are independent simulations: fan them
	// out on the sweep pool.
	results, err := SweepContext(opts.ctx(), len(configs), func(i int) (fairnessOutcome, error) {
		return runOne(configs[i])
	})
	if err != nil {
		return nil, err
	}

	f := &Figure{
		ID: "fairness",
		Title: fmt.Sprintf("Multi-tenant fairness: %d victims + 1 aggressor at %dx, setup %d (max-min partition vs shared gate)",
			victims, aggFactor, setupID),
	}
	basePs := victimP95s(results[0].out, victims)
	for i, c := range configs {
		f.Series = append(f.Series, results[i].series)
		r := results[i].out.Total
		agg := uint64(0)
		for _, cr := range r.Classes {
			if cr.Class == 0 && len(configs[i].mix) > victims {
				agg = cr.Completed
			}
		}
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: victim p95s %.3gs/%.3gs/%.3gs, throughput %.2f tx/s, aggressor completed %d",
			c.label, results[i].series.Y[0], results[i].series.Y[1], results[i].series.Y[2],
			r.Throughput(), agg))
	}
	// The isolation verdict: every victim within 2x of its own
	// baseline under fairness, and at least one victim blown past it
	// without.
	worst := func(i int) float64 {
		ratio := 0.0
		for v, p := range victimP95s(results[i].out, victims) {
			if basePs[v] > 0 && p/basePs[v] > ratio {
				ratio = p / basePs[v]
			}
		}
		return ratio
	}
	offWorst, onWorst := worst(1), worst(2)
	f.Series = append(f.Series, Series{
		Name: "worst victim p95 ratio vs baseline (off, on)",
		X:    []float64{0, 1},
		Y:    []float64{offWorst, onWorst},
	})
	if fr := results[2].out.Fairness; fr != nil {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"fairness loop: final limits %v, %d iterations, %d slot moves",
			fr.Limits, fr.Iterations, fr.Moves))
	}
	f.Notes = append(f.Notes, fmt.Sprintf(
		"expect: fairness-on holds every victim within 2x of baseline (worst %.2fx), fairness-off does not (worst %.2fx)",
		onWorst, offWorst))
	return f, nil
}

package lockmgr

import (
	"testing"

	"extsched/internal/sim"
)

// harness wires a Manager with an abort recorder.
type harness struct {
	eng    *sim.Engine
	mgr    *Manager
	aborts map[TxnID]AbortReason
}

func newHarness(policy Policy, preempt bool) *harness {
	h := &harness{eng: sim.NewEngine(), aborts: make(map[TxnID]AbortReason)}
	h.mgr = New(h.eng, Config{
		Policy:  policy,
		Preempt: preempt,
		OnAbort: func(t TxnID, r AbortReason) {
			h.aborts[t] = r
			h.mgr.Release(t)
		},
	})
	return h
}

func TestSharedLocksCoexist(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	if !h.mgr.Acquire(1, 100, S, nil) {
		t.Fatal("first S should grant")
	}
	if !h.mgr.Acquire(2, 100, S, nil) {
		t.Fatal("second S should grant")
	}
	if h.mgr.Holders(100) != 2 {
		t.Errorf("holders = %d, want 2", h.mgr.Holders(100))
	}
}

func TestExclusiveBlocks(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	granted2 := false
	if !h.mgr.Acquire(1, 100, X, nil) {
		t.Fatal("first X should grant")
	}
	if h.mgr.Acquire(2, 100, X, func() { granted2 = true }) {
		t.Fatal("conflicting X should block")
	}
	if !h.mgr.Waiting(2) {
		t.Error("txn 2 should be waiting")
	}
	h.mgr.Release(1)
	if !granted2 {
		t.Error("txn 2 should be granted after release")
	}
	if h.mgr.Waiting(2) {
		t.Error("txn 2 should no longer wait")
	}
}

func TestSBlocksXAndFIFOOrder(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Begin(3, Low)
	var order []int
	h.mgr.Acquire(1, 5, S, nil)
	h.mgr.Acquire(2, 5, X, func() { order = append(order, 2) })
	h.mgr.Acquire(3, 5, X, func() { order = append(order, 3) })
	h.mgr.Release(1)
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("after first release, grants = %v, want [2]", order)
	}
	h.mgr.Release(2)
	if len(order) != 2 || order[1] != 3 {
		t.Fatalf("grants = %v, want [2 3]", order)
	}
}

func TestNoSkipOverBlockedHead(t *testing.T) {
	// Holder has X; queue = [X(2), S(3)]. S(3) must NOT be granted
	// before X(2) under FIFO (no starvation of writers).
	h := newHarness(FIFO, false)
	for i := TxnID(1); i <= 3; i++ {
		h.mgr.Begin(i, Low)
	}
	sGranted := false
	h.mgr.Acquire(1, 9, X, nil)
	h.mgr.Acquire(2, 9, X, func() {})
	h.mgr.Acquire(3, 9, S, func() { sGranted = true })
	h.mgr.Release(1)
	if sGranted {
		t.Error("S jumped over queued X head")
	}
}

func TestBatchGrantSharers(t *testing.T) {
	// Holder X; queue = [S, S]: both S granted together on release.
	h := newHarness(FIFO, false)
	for i := TxnID(1); i <= 3; i++ {
		h.mgr.Begin(i, Low)
	}
	granted := 0
	h.mgr.Acquire(1, 9, X, nil)
	h.mgr.Acquire(2, 9, S, func() { granted++ })
	h.mgr.Acquire(3, 9, S, func() { granted++ })
	h.mgr.Release(1)
	if granted != 2 {
		t.Errorf("granted %d sharers, want 2", granted)
	}
}

func TestReacquireHeldIsNoop(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	if !h.mgr.Acquire(1, 7, X, nil) {
		t.Fatal("X grant failed")
	}
	if !h.mgr.Acquire(1, 7, S, nil) {
		t.Error("S under own X should be covered")
	}
	if !h.mgr.Acquire(1, 7, X, nil) {
		t.Error("repeat X should be covered")
	}
	if h.mgr.Holding(1) != 1 {
		t.Errorf("holding = %d, want 1", h.mgr.Holding(1))
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Acquire(1, 7, S, nil)
	if !h.mgr.Acquire(1, 7, X, nil) {
		t.Error("sole-holder upgrade should grant immediately")
	}
}

func TestUpgradeWaitsForOtherSharers(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Acquire(1, 7, S, nil)
	h.mgr.Acquire(2, 7, S, nil)
	upgraded := false
	if h.mgr.Acquire(1, 7, X, func() { upgraded = true }) {
		t.Fatal("upgrade with co-sharer should block")
	}
	h.mgr.Release(2)
	if !upgraded {
		t.Error("upgrade should grant after the other sharer leaves")
	}
}

func TestUpgradeJumpsQueue(t *testing.T) {
	// S(1), S(2) hold; X(3) queued; then 1 upgrades. The upgrade must
	// sit ahead of X(3): when 2 releases, 1 gets X first.
	h := newHarness(FIFO, false)
	for i := TxnID(1); i <= 3; i++ {
		h.mgr.Begin(i, Low)
	}
	h.mgr.Acquire(1, 7, S, nil)
	h.mgr.Acquire(2, 7, S, nil)
	x3 := false
	up1 := false
	h.mgr.Acquire(3, 7, X, func() { x3 = true })
	h.mgr.Acquire(1, 7, X, func() { up1 = true })
	h.mgr.Release(2)
	if !up1 {
		t.Error("upgrade not granted after sharer release")
	}
	if x3 {
		t.Error("queued X granted before upgrade")
	}
	h.mgr.Release(1)
	if !x3 {
		t.Error("queued X not granted after upgrader released")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// 1 holds A, 2 holds B; 1 requests B, 2 requests A → cycle; the
	// requester closing the cycle (2) is the victim.
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 2, X, nil)
	h.mgr.Acquire(1, 2, X, func() {})
	h.mgr.Acquire(2, 1, X, func() {})
	h.eng.RunAll()
	if len(h.aborts) != 1 {
		t.Fatalf("aborts = %v, want exactly one victim", h.aborts)
	}
	if r, ok := h.aborts[2]; !ok || r != Deadlock {
		t.Errorf("victim = %v, want txn 2 with Deadlock", h.aborts)
	}
	if h.mgr.Stats().Deadlocks != 1 {
		t.Errorf("deadlock count = %d, want 1", h.mgr.Stats().Deadlocks)
	}
}

func TestDeadlockVictimReleaseUnblocks(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	granted1 := false
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 2, X, nil)
	h.mgr.Acquire(1, 2, X, func() { granted1 = true })
	h.mgr.Acquire(2, 1, X, func() {})
	h.eng.RunAll()
	if !granted1 {
		t.Error("survivor should be granted after victim release")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	h := newHarness(FIFO, false)
	for i := TxnID(1); i <= 3; i++ {
		h.mgr.Begin(i, Low)
		h.mgr.Acquire(i, uint64(i), X, nil)
	}
	h.mgr.Acquire(1, 2, X, func() {})
	h.mgr.Acquire(2, 3, X, func() {})
	h.mgr.Acquire(3, 1, X, func() {}) // closes the 3-cycle
	h.eng.RunAll()
	if len(h.aborts) != 1 {
		t.Fatalf("aborts = %v, want one victim", h.aborts)
	}
	if _, ok := h.aborts[3]; !ok {
		t.Errorf("victim = %v, want txn 3 (the cycle closer)", h.aborts)
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two S holders both upgrading is a classic deadlock.
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Acquire(1, 7, S, nil)
	h.mgr.Acquire(2, 7, S, nil)
	h.mgr.Acquire(1, 7, X, func() {})
	h.mgr.Acquire(2, 7, X, func() {})
	h.eng.RunAll()
	if len(h.aborts) != 1 {
		t.Fatalf("aborts = %v, want one upgrade-deadlock victim", h.aborts)
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	// Low X queued first, then High X: high must be granted first
	// under PriorityFIFO.
	h := newHarness(PriorityFIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Begin(3, High)
	var order []int
	h.mgr.Acquire(1, 5, X, nil)
	h.mgr.Acquire(2, 5, X, func() { order = append(order, 2) })
	h.mgr.Acquire(3, 5, X, func() { order = append(order, 3) })
	h.mgr.Release(1)
	h.mgr.Release(3)
	h.mgr.Release(2)
	if len(order) != 2 || order[0] != 3 || order[1] != 2 {
		t.Errorf("grant order = %v, want [3 2]", order)
	}
}

func TestPOWPreemption(t *testing.T) {
	// Low txn 1 holds A and is blocked on B (held by txn 2). High txn 3
	// requests A: POW preempts txn 1 because it is blocked elsewhere.
	h := newHarness(PriorityFIFO, true)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Begin(3, High)
	granted3 := false
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 2, X, nil)
	h.mgr.Acquire(1, 2, X, func() {}) // 1 now blocked on B
	h.mgr.Acquire(3, 1, X, func() { granted3 = true })
	h.eng.RunAll()
	if r, ok := h.aborts[1]; !ok || r != Preempted {
		t.Fatalf("aborts = %v, want txn 1 Preempted", h.aborts)
	}
	if !granted3 {
		t.Error("high-priority txn should be granted after preemption")
	}
	if h.mgr.Stats().Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", h.mgr.Stats().Preemptions)
	}
}

func TestPOWDoesNotPreemptRunningHolder(t *testing.T) {
	// Low holder NOT blocked elsewhere: POW must not preempt it.
	h := newHarness(PriorityFIFO, true)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, High)
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 1, X, func() {})
	h.eng.RunAll()
	if len(h.aborts) != 0 {
		t.Errorf("aborts = %v, want none (holder is runnable)", h.aborts)
	}
}

func TestPOWDoesNotPreemptHighHolder(t *testing.T) {
	h := newHarness(PriorityFIFO, true)
	h.mgr.Begin(1, High)
	h.mgr.Begin(2, Low)
	h.mgr.Begin(3, High)
	h.mgr.Acquire(1, 1, X, nil)
	h.mgr.Acquire(2, 2, X, nil)
	h.mgr.Acquire(1, 2, X, func() {}) // high blocked elsewhere
	h.mgr.Acquire(3, 1, X, func() {})
	h.eng.RunAll()
	if _, aborted := h.aborts[1]; aborted {
		t.Error("POW must never preempt a high-priority holder")
	}
}

func TestReleaseUnknownTxnNoop(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Release(99) // must not panic
}

func TestReleaseCancelsPendingRequest(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Begin(3, Low)
	h.mgr.Acquire(1, 5, X, nil)
	granted2, granted3 := false, false
	h.mgr.Acquire(2, 5, X, func() { granted2 = true })
	h.mgr.Acquire(3, 5, X, func() { granted3 = true })
	h.mgr.Release(2) // abort the queued txn
	h.mgr.Release(1)
	if granted2 {
		t.Error("released txn's request fired")
	}
	if !granted3 {
		t.Error("queue should advance past the canceled request")
	}
}

func TestNoTwoXHoldersInvariant(t *testing.T) {
	// Randomized stress: at no point may two txns hold X on one key,
	// or an X coexist with an S.
	h := newHarness(FIFO, false)
	g := sim.NewRNG(7, 0)
	const nTxns = 60
	const nKeys = 8
	live := map[TxnID]bool{}
	for i := TxnID(1); i <= nTxns; i++ {
		h.mgr.Begin(i, Low)
		live[i] = true
	}
	check := func() {
		for k := uint64(0); k < nKeys; k++ {
			l := h.mgr.locks[k]
			if l == nil {
				continue
			}
			xCount, sCount := 0, 0
			for _, mode := range l.holders {
				if mode == X {
					xCount++
				} else {
					sCount++
				}
			}
			if xCount > 1 || (xCount == 1 && sCount > 0) {
				t.Fatalf("key %d: %d X holders, %d S holders", k, xCount, sCount)
			}
		}
	}
	for step := 0; step < 3000; step++ {
		id := TxnID(1 + g.IntN(nTxns))
		if _, aborted := h.aborts[id]; aborted {
			live[id] = false
		}
		if !live[id] {
			continue
		}
		if h.mgr.Waiting(id) {
			continue
		}
		switch g.IntN(4) {
		case 0, 1:
			mode := S
			if g.IntN(2) == 0 {
				mode = X
			}
			h.mgr.Acquire(id, uint64(g.IntN(nKeys)), mode, func() {})
		case 2:
			h.mgr.Release(id)
			live[id] = false
		case 3:
			h.eng.RunAll() // let deadlock aborts fire
		}
		check()
	}
	// Drain: release everything, queues must empty.
	for id := range live {
		h.mgr.Release(id)
	}
	h.eng.RunAll()
	check()
	if h.mgr.Live() != 0 {
		t.Errorf("live txns = %d after full release", h.mgr.Live())
	}
}

func TestStatsCounts(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	h.mgr.Begin(2, Low)
	h.mgr.Acquire(1, 1, X, nil)       // grant
	h.mgr.Acquire(2, 1, X, func() {}) // wait
	st := h.mgr.Stats()
	if st.Grants != 1 || st.Waits != 1 {
		t.Errorf("stats = %+v, want 1 grant 1 wait", st)
	}
}

func TestDuplicateBeginPanics(t *testing.T) {
	h := newHarness(FIFO, false)
	h.mgr.Begin(1, Low)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Begin did not panic")
		}
	}()
	h.mgr.Begin(1, Low)
}

func TestMissingOnAbortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil OnAbort did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

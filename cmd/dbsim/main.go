// Command dbsim runs a single simulated-DBMS experiment and prints its
// metrics — the quickest way to poke at one configuration.
//
// Examples:
//
//	dbsim -setup 1 -mpl 5
//	dbsim -workload W_CPU-browsing -cpus 2 -mpl 8 -policy priority
//	dbsim -setup 8 -mpl 0 -measure 600      # no limit, long run
package main

import (
	"flag"
	"fmt"
	"os"

	"extsched"
)

func main() {
	var (
		setupID  = flag.Int("setup", 0, "Table 2 setup id (1-17)")
		wl       = flag.String("workload", "", "Table 1 workload name (with -cpus/-disks/-iso)")
		cpus     = flag.Int("cpus", 1, "CPUs (with -workload)")
		disks    = flag.Int("disks", 1, "data disks (with -workload)")
		iso      = flag.String("iso", "RR", "isolation level: RR or UR")
		mpl      = flag.Int("mpl", 0, "multiprogramming limit (0 = unlimited)")
		policy   = flag.String("policy", "fifo", "external queue policy: fifo, priority, sjf")
		clients  = flag.Int("clients", 100, "closed-system client population")
		lambda   = flag.Float64("lambda", 0, "open-system arrival rate (0 = closed system)")
		warmup   = flag.Float64("warmup", 50, "warmup simulated seconds")
		measure  = flag.Float64("measure", 300, "measured simulated seconds")
		seed     = flag.Uint64("seed", 1, "random seed")
		lockPrio = flag.Bool("internal-lock-prio", false, "internal lock prioritization (POW)")
		cpuPrio  = flag.Bool("internal-cpu-prio", false, "internal CPU prioritization (renice)")
	)
	flag.Parse()

	sys, err := extsched.NewSystem(extsched.Config{
		SetupID:              *setupID,
		Workload:             *wl,
		CPUs:                 *cpus,
		Disks:                *disks,
		Isolation:            *iso,
		MPL:                  *mpl,
		Policy:               *policy,
		InternalLockPriority: *lockPrio,
		InternalCPUPriority:  *cpuPrio,
		Seed:                 *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(sys.Setup())
	var rep extsched.Report
	if *lambda > 0 {
		rep, err = sys.RunOpen(*lambda, *warmup, *measure)
	} else {
		rep, err = sys.RunClosed(*clients, *warmup, *measure)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mpl:              %d\n", sys.MPL())
	fmt.Printf("completed:        %d txns in %.0f sim-seconds\n", rep.Completed, rep.SimSeconds)
	fmt.Printf("throughput:       %.2f txn/s\n", rep.Throughput)
	fmt.Printf("mean RT:          %.4f s (inside %.4f s, external wait %.4f s)\n",
		rep.MeanRT, rep.MeanInside, rep.ExternalW)
	fmt.Printf("high-prio RT:     %.4f s\n", rep.HighRT)
	fmt.Printf("low-prio RT:      %.4f s\n", rep.LowRT)
	fmt.Printf("cpu util:         %.3f\n", rep.CPUUtil)
	fmt.Printf("disk util:        %.3f\n", rep.DiskUtil)
	fmt.Printf("lock waits:       %d (deadlocks %d, preemptions %d, restarts %d)\n",
		rep.LockWaits, rep.Deadlocks, rep.Preemptions, rep.Restarts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbsim:", err)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extsched"
)

// TestRunTinyClosed drives one small closed-system simulation end to
// end through the CLI surface.
func TestRunTinyClosed(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-setup", "1", "-mpl", "5", "-clients", "20", "-warmup", "2", "-measure", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"mpl:", "throughput:", "mean RT:", "cpu util:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "mpl:              5") {
		t.Errorf("MPL not echoed:\n%s", s)
	}
}

func TestRunTinyOpen(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-setup", "1", "-mpl", "10", "-lambda", "30", "-warmup", "2", "-measure", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "throughput:") {
		t.Errorf("open-system output incomplete:\n%s", out.String())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cases := [][]string{
		{},                                // neither setup nor workload
		{"-setup", "99"},                  // unknown setup
		{"-setup", "1", "-policy", "zzz"}, // unknown policy
		{"-workload", "W_CPU-inventory", "-iso", "XX"}, // unknown isolation
		{"-no-such-flag"}, // flag parse error
	}
	for i, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): invalid invocation accepted", i, args)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Errorf("-h returned %v, want nil", err)
	}
	if !strings.Contains(out.String(), "Usage") {
		t.Errorf("-h did not print usage:\n%s", out.String())
	}
}

// TestRunScenarioExample: the built-in template must itself be a valid,
// runnable scenario.
func TestRunScenarioExample(t *testing.T) {
	var tmpl strings.Builder
	if err := run([]string{"-scenario-example"}, &tmpl); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, []byte(tmpl.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	// Shrink the template so the test stays fast: parse, trim, rewrite.
	sc, err := extsched.ParseScenario([]byte(tmpl.String()))
	if err != nil {
		t.Fatalf("template scenario invalid: %v", err)
	}
	sc.Warmup = 2
	sc.SampleInterval = 5
	for i := range sc.Phases {
		sc.Phases[i].Duration = 15
	}
	sc.Phases[0].Events = nil // controller needs long windows; drop it
	small, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, small, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-setup", "1", "-mpl", "5", "-scenario", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"scenario: surge-demo", "steady", "surge", "replay", "TOTAL", "final mpl:        5"} {
		if !strings.Contains(s, want) {
			t.Errorf("scenario output missing %q:\n%s", want, s)
		}
	}
}

// TestRunAutoscaledFleet drives a sharded open run with sampled
// dispatch and the -autoscale flag end to end: the report must carry
// the autoscale summary line and the per-shard table's fleet and
// p95 columns.
func TestRunAutoscaledFleet(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-setup", "1", "-mpl", "12", "-shards", "4",
		"-dispatch", "jsq-d:3", "-lambda", "120", "-autoscale", "2:4",
		"-warmup", "2", "-measure", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"dispatch jsq-d:3", "autoscale:        fleet ended at", "scale-ups", "shard-seconds billed", "fleet", "p95RT"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunAutoscaleFlagErrors: malformed -autoscale values and specs
// the scenario validator rejects must fail loudly, not silently run
// a fixed fleet.
func TestRunAutoscaleFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-setup", "1", "-mpl", "8", "-shards", "4", "-autoscale", "2"},       // no colon
		{"-setup", "1", "-mpl", "8", "-shards", "4", "-autoscale", "x:4"},     // bad min
		{"-setup", "1", "-mpl", "8", "-shards", "4", "-autoscale", "2:y"},     // bad max
		{"-setup", "1", "-mpl", "8", "-shards", "4", "-autoscale", "4:2"},     // min > max
		{"-setup", "1", "-mpl", "8", "-shards", "4", "-autoscale", "0:4"},     // min < 1
		{"-setup", "1", "-mpl", "8", "-autoscale", "2:4"},                     // unsharded
		{"-setup", "1", "-mpl", "8", "-shards", "4", "-dispatch", "jsq-d:0"},  // bad sample width
		{"-setup", "1", "-mpl", "8", "-shards", "4", "-dispatch", "jsq-d:xx"}, // non-numeric width
	}
	for i, args := range cases {
		var out strings.Builder
		args = append(args, "-warmup", "1", "-measure", "5", "-lambda", "50")
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): invalid invocation accepted", i, args)
		}
	}
}

func TestRunScenarioErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-setup", "1", "-scenario", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing scenario file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"phases":[{"kind":"zigzag"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-setup", "1", "-scenario", bad}, &out); err == nil {
		t.Error("invalid scenario accepted")
	}
}

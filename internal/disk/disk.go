// Package disk simulates the storage subsystem: FCFS per-disk queues, a
// striped data array (the paper stripes the database evenly over 1–6
// IDE drives) and a dedicated log disk for commit-time WAL writes, the
// same layout as the paper's testbed (one drive reserved for the log).
package disk

import (
	"fmt"
	"math"

	"extsched/internal/dist"
	"extsched/internal/sim"
)

// Request is a queued I/O handle.
type Request struct {
	service  float64
	onDone   func()
	canceled bool
	started  bool
}

// Disk is a single FCFS device.
type Disk struct {
	eng   *sim.Engine
	name  string
	queue []*Request
	busy  bool
	// busyTime integrates seconds the device spent serving requests.
	busyTime  float64
	busySince float64
	served    uint64
}

// NewDisk returns an idle FCFS disk.
func NewDisk(eng *sim.Engine, name string) *Disk {
	return &Disk{eng: eng, name: name}
}

// Name returns the device name.
func (d *Disk) Name() string { return d.name }

// QueueLen returns the number of waiting requests (excluding the one in
// service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Served returns the number of completed requests.
func (d *Disk) Served() uint64 { return d.served }

// BusySeconds returns accumulated service time.
func (d *Disk) BusySeconds() float64 {
	if d.busy {
		return d.busyTime + (d.eng.Now() - d.busySince)
	}
	return d.busyTime
}

// Submit enqueues a request with the given service time. onDone fires
// at completion.
func (d *Disk) Submit(service float64, onDone func()) *Request {
	if service < 0 || math.IsNaN(service) || math.IsInf(service, 0) {
		panic(fmt.Sprintf("disk: invalid service time %v", service))
	}
	r := &Request{service: service, onDone: onDone}
	d.queue = append(d.queue, r)
	if !d.busy {
		d.startNext()
	}
	return r
}

// Cancel drops a request that has not started service (transaction
// abort). A request already in service completes normally but its
// callback is suppressed.
func (d *Disk) Cancel(r *Request) {
	if r == nil {
		return
	}
	r.canceled = true
	if !r.started {
		for i, q := range d.queue {
			if q == r {
				d.queue = append(d.queue[:i], d.queue[i+1:]...)
				break
			}
		}
	}
}

func (d *Disk) startNext() {
	for len(d.queue) > 0 {
		r := d.queue[0]
		d.queue = d.queue[1:]
		if r.canceled {
			continue
		}
		r.started = true
		d.busy = true
		d.busySince = d.eng.Now()
		d.eng.After(r.service, func() {
			d.busy = false
			d.busyTime += r.service
			d.served++
			// Start the next queued request BEFORE the completion
			// callback: onDone may synchronously submit a follow-up I/O
			// to this very disk, and it must queue behind the next
			// request rather than start a second concurrent service.
			d.startNext()
			if !r.canceled {
				r.onDone()
			}
		})
		return
	}
	d.busy = false
}

// Array is a striped set of data disks: each I/O goes to a uniformly
// random stripe, matching the paper's assumption that "the data is
// evenly striped over the disks".
type Array struct {
	disks   []*Disk
	service dist.Distribution
	rng     *sim.RNG
}

// NewArray builds n striped disks whose per-request service time is
// drawn from service.
func NewArray(eng *sim.Engine, n int, service dist.Distribution, rng *sim.RNG) *Array {
	if n < 1 {
		panic(fmt.Sprintf("disk: array needs >= 1 disk, got %d", n))
	}
	a := &Array{service: service, rng: rng}
	for i := 0; i < n; i++ {
		a.disks = append(a.disks, NewDisk(eng, fmt.Sprintf("data%d", i)))
	}
	return a
}

// Disks exposes the individual devices (for metrics).
func (a *Array) Disks() []*Disk { return a.disks }

// Size returns the number of disks.
func (a *Array) Size() int { return len(a.disks) }

// SubmitIO issues one I/O to a uniformly chosen stripe with a service
// time drawn from the array's distribution. It returns the request
// handle together with the disk it landed on (for cancellation).
func (a *Array) SubmitIO(onDone func()) (*Request, *Disk) {
	d := a.disks[a.rng.IntN(len(a.disks))]
	return d.Submit(a.service.Sample(a.rng), onDone), d
}

// Log is the dedicated log disk. Sequential WAL appends are much
// cheaper than random data I/O, so it takes its own (smaller) service
// distribution. With GroupCommit enabled, commit records arriving
// while a flush is in progress are batched into the next flush — one
// device write durably commits the whole group, which is how real
// engines keep the log from becoming the bottleneck at high MPLs.
type Log struct {
	disk        *Disk
	service     dist.Distribution
	rng         *sim.RNG
	groupCommit bool
	flushing    bool
	waiters     []func()
	flushes     uint64
	appends     uint64
	maxGroup    int
}

// NewLog returns the log device (no group commit).
func NewLog(eng *sim.Engine, service dist.Distribution, rng *sim.RNG) *Log {
	return &Log{disk: NewDisk(eng, "log"), service: service, rng: rng}
}

// SetGroupCommit toggles commit-record batching.
func (l *Log) SetGroupCommit(on bool) { l.groupCommit = on }

// Disk exposes the underlying device.
func (l *Log) Disk() *Disk { return l.disk }

// Flushes returns the number of device writes issued.
func (l *Log) Flushes() uint64 { return l.flushes }

// Appends returns the number of commit records appended.
func (l *Log) Appends() uint64 { return l.appends }

// MaxGroupSize returns the largest commit group flushed together.
func (l *Log) MaxGroupSize() int { return l.maxGroup }

// Append writes one commit record; onDone fires when it is durable.
func (l *Log) Append(onDone func()) {
	l.appends++
	if !l.groupCommit {
		l.flushes++
		if l.maxGroup < 1 {
			l.maxGroup = 1
		}
		l.disk.Submit(l.service.Sample(l.rng), onDone)
		return
	}
	l.waiters = append(l.waiters, onDone)
	if !l.flushing {
		l.flush()
	}
}

// flush writes the current group in a single device operation.
func (l *Log) flush() {
	group := l.waiters
	l.waiters = nil
	if len(group) == 0 {
		l.flushing = false
		return
	}
	if len(group) > l.maxGroup {
		l.maxGroup = len(group)
	}
	l.flushing = true
	l.flushes++
	l.disk.Submit(l.service.Sample(l.rng), func() {
		for _, cb := range group {
			cb()
		}
		// Records that arrived during this flush form the next group.
		l.flush()
	})
}

// Package runner executes phased workload scenarios on an assembled
// simulation stack. It is the engine behind the public Scenario API
// (extsched.System.Run) and the experiment harness's single-phase
// runs: one place that owns the measurement-window rule, phase
// sequencing, mid-phase control events, and interval snapshot
// streaming, so that every run in the repository measures the same way.
//
// # The windowing rule
//
// A run has exactly one measurement window: it opens when the warmup
// (if any) ends and closes when the last phase's duration elapses. A
// completion is counted if and only if it occurs inside the window —
// work still in flight when the window closes is excluded, and nothing
// that completes after the window (during a drain, say) can pollute
// the metrics. The seed code's RunOpen violated this (it drained the
// queue after the window and reported those completions against the
// window's length, biasing throughput up and response times long);
// TestWindowingRule in this package is the regression test for the
// unified rule.
package runner

import (
	"context"
	"fmt"
	"math"
	"sort"

	"extsched/internal/autoscale"
	"extsched/internal/cluster"
	"extsched/internal/controller"
	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/fairness"
	"extsched/internal/sim"
	"extsched/internal/stats"
	"extsched/internal/trace"
	"extsched/internal/workload"
	"extsched/metrics"
)

// Kind names a phase's traffic source.
type Kind string

const (
	// KindClosed is a fixed client population (think-submit-wait loop).
	KindClosed Kind = "closed"
	// KindOpen is a stationary Poisson arrival process.
	KindOpen Kind = "open"
	// KindRamp ramps the Poisson rate linearly from Lambda to Lambda2
	// over the phase's duration.
	KindRamp Kind = "ramp"
	// KindBurst is a two-state Markov-modulated Poisson process with
	// long-run mean rate Lambda (flash-crowd arrivals).
	KindBurst Kind = "burst"
	// KindTrace replays a recorded trace.
	KindTrace Kind = "trace"
	// KindDiurnal is a non-homogeneous Poisson process whose rate
	// follows a sine around Lambda (DiurnalAmp / DiurnalPeriod), the
	// shape of a day's multi-tenant traffic; an optional flash-crowd
	// window (FlashFactor / FlashAt / FlashDuration) may overlay it.
	KindDiurnal Kind = "diurnal"
	// KindFlash is a stationary Poisson process at Lambda with one
	// flash-crowd window during which the rate is multiplied by
	// FlashFactor; an optional diurnal sine may overlay it.
	KindFlash Kind = "flash"
)

// ControllerSpec configures the Section 4.3 feedback controller when a
// phase event enables it.
type ControllerSpec struct {
	// MaxThroughputLoss is the acceptable fractional throughput loss
	// versus the reference (e.g. 0.05). Required.
	MaxThroughputLoss float64
	// ReferenceThroughput is the no-MPL optimum in completions per
	// second. Required.
	ReferenceThroughput float64
	// MaxRTIncrease / ReferenceRT enable the optional response-time
	// criterion; zero values disable it.
	MaxRTIncrease float64
	ReferenceRT   float64
	// MinObservations gates window close; 0 = the paper's 100.
	MinObservations int
	// HoldWindows is the convergence hold count; 0 = 2.
	HoldWindows int
	// StopOnConverge ends the whole run as soon as the controller
	// converges (the AutoTune workflow); the remaining phase time and
	// any later phases are skipped.
	StopOnConverge bool
}

// ShardSpeed retargets one shard's relative CPU speed (a slowdown,
// failure-in-slow-motion, or recovery).
type ShardSpeed struct {
	Shard int
	Speed float64
}

// SLOSpec configures the per-class latency-SLO controller when a phase
// event (or Stack.SLO) enables it: partition the MPL across classes
// and steer the split so Class's Percentile-th response-time
// percentile stays at or below Target seconds.
type SLOSpec struct {
	// Class is the protected class; the partition's other side is the
	// complementary class (high protects against low and vice versa).
	Class core.Class
	// Percentile is the controlled percentile (0 = 95).
	Percentile float64
	// Target is the latency bound in seconds. Required, > 0.
	Target float64
	// MinObservations gates SLO observation-window close (0 = 50).
	MinObservations int
	// Margin is the give-back hysteresis fraction (0 = 0.5).
	Margin float64
}

// FairnessSpec configures the N-tenant weighted max-min fairness
// controller (internal/fairness) when a phase event or Stack.Fairness
// enables it: partition the MPL across the weighted tenant classes and
// steer the split so each tenant's weight-normalized attained service
// equalizes. Unsharded stacks only (the class partition lives on the
// lone frontend), and mutually exclusive with the SLO loop and the
// throughput controller — all three share the metrics window.
type FairnessSpec struct {
	// Weights maps each governed tenant class to its relative share
	// weight. Required: >= 2 entries, every weight > 0.
	Weights map[core.Class]float64
	// MinObservations gates fairness-window close (0 = 50).
	MinObservations int
	// Hysteresis is the imbalance ratio a busy donor must exceed before
	// a slot moves (0 = 1.2; must be >= 1 otherwise).
	Hysteresis float64
	// Strict makes the partition a hard cap: a tenant at its limit
	// never borrows idle capacity. Trades utilization for latency
	// isolation. Default false (work-conserving borrowing).
	Strict bool
}

// Validate checks a FairnessSpec's standalone fields.
func (f FairnessSpec) Validate() error {
	if len(f.Weights) < 2 {
		return fmt.Errorf("runner: fairness needs >= 2 weighted classes, got %d", len(f.Weights))
	}
	for c, w := range f.Weights {
		if w <= 0 || !finite(w) {
			return fmt.Errorf("runner: fairness class %d weight %v must be positive", c, w)
		}
	}
	if !finite(f.Hysteresis) || (f.Hysteresis != 0 && f.Hysteresis < 1) {
		return fmt.Errorf("runner: fairness hysteresis %v must be >= 1 (0 = default)", f.Hysteresis)
	}
	if f.MinObservations < 0 {
		return fmt.Errorf("runner: fairness MinObservations %d must be >= 0", f.MinObservations)
	}
	return nil
}

// ClassLimits is a static MPL partition: High and Low concurrent slots
// for the two priority classes. Both zero clears the partition.
type ClassLimits struct {
	High, Low int
}

// AdmitDeadline sets per-class admission deadlines in seconds (the
// deadline-shedding mechanism): a transaction that cannot start within
// its class's deadline of arriving is shed. Zero clears that class's
// deadline.
type AdmitDeadline struct {
	High, Low float64
}

// ChurnSpec is a deterministic MTBF/MTTR fault generator for one
// phase: each shard independently alternates exponential up times
// (mean MTBF seconds) and down times (mean MTTR seconds), drawn from a
// seeded per-shard stream, so the same spec and seed produce the same
// failure schedule on every run. The generated fail events are
// guarded: a failure that would take the last Up shard down is skipped
// (the fleet never churns itself completely dark). Sharded stacks
// only.
type ChurnSpec struct {
	// MTBF is the per-shard mean time between failures in simulated
	// seconds (> 0).
	MTBF float64
	// MTTR is the per-shard mean time to recovery in simulated seconds
	// (> 0).
	MTTR float64
	// Seed drives the failure schedule (0 = the stack seed).
	Seed uint64
}

// Validate checks a churn generator's parameters.
func (c ChurnSpec) Validate() error {
	if !finite(c.MTBF, c.MTTR) {
		return fmt.Errorf("runner: churn MTBF/MTTR must be finite")
	}
	if c.MTBF <= 0 {
		return fmt.Errorf("runner: churn MTBF %v must be positive", c.MTBF)
	}
	if c.MTTR <= 0 {
		return fmt.Errorf("runner: churn MTTR %v must be positive", c.MTTR)
	}
	return nil
}

// Event is a mid-phase control action, applied At seconds after the
// phase's measured start (for the first phase, after warmup ends).
// Exactly the actions a DBA could take against a live system: move the
// MPL, reweight the queue, hand control to the feedback loop, degrade
// a shard, switch the dispatch policy, crash or drain or add a shard.
type Event struct {
	At float64
	// SetMPL, when non-nil, changes the MPL (0 = unlimited). On a
	// sharded stack the value is the cluster-wide limit, split across
	// shards by cluster.SplitMPL.
	SetMPL *int
	// SetWFQHighWeight, when non-nil, reweights the WFQ policy's high
	// class (low keeps weight 1). Ignored (with no error) when the
	// frontend's policy is not WFQ.
	//
	// Deprecated: the two-class shorthand is superseded by SetWeights,
	// which reweights arbitrary tenant classes.
	SetWFQHighWeight *float64
	// SetWeights, when non-empty, reweights the WFQ policy per class
	// (classes absent from the map keep their current weight). Ignored
	// (with no error) when the frontend's policy is not WFQ.
	SetWeights map[core.Class]float64
	// SetTenantLimits, when non-nil, installs a static MPL partition
	// over arbitrary tenant classes (each limit >= 1; an empty map
	// clears the partition). Unsharded stacks only. The generalization
	// of SetClassLimits.
	SetTenantLimits map[core.Class]int
	// SetTenantDeadlines, when non-nil, sets per-class admission
	// deadlines for arbitrary tenant classes (seconds; zero clears that
	// class's deadline). Both stack shapes. The generalization of
	// SetAdmitDeadline.
	SetTenantDeadlines map[core.Class]float64
	// EnableFairness attaches the weighted max-min fairness controller
	// to the completion stream; DisableFairness detaches it, freezing
	// the class partition where the loop left it. Unsharded stacks only.
	EnableFairness  *FairnessSpec
	DisableFairness bool
	// SetShardSpeed, when non-nil, changes one shard's relative CPU
	// speed. Running on an unsharded stack is an error.
	SetShardSpeed *ShardSpeed
	// SetDispatch, when non-empty, switches the cluster's dispatch
	// policy (cluster.NewPolicy names). Running on an unsharded stack
	// is an error.
	SetDispatch string
	// EnableController attaches the feedback controller to the
	// completion stream; DisableController detaches it, freezing the
	// MPL where the loop left it.
	EnableController  *ControllerSpec
	DisableController bool
	// SetSLO attaches (or replaces) the per-class latency-SLO
	// controller; DisableSLO detaches it, freezing the class partition
	// where the loop left it. Unsharded stacks only.
	SetSLO     *SLOSpec
	DisableSLO bool
	// SetClassLimits installs a static MPL partition (unsharded stacks
	// only; both-zero clears it).
	SetClassLimits *ClassLimits
	// SetAdmitDeadline changes the per-class admission deadlines (both
	// stack shapes; zero clears a class's deadline).
	SetAdmitDeadline *AdmitDeadline
	// ShardFail, when non-nil, crashes that shard: it goes Down, its
	// MPL share moves to the survivors, and the work it held is handed
	// to the stack's recovery policy (resubmit with backoff, or shed —
	// see Stack.Recovery). Sharded stacks only.
	ShardFail *int
	// ShardRecover, when non-nil, returns a Down shard to service (or
	// cancels a drain). Sharded stacks only.
	ShardRecover *int
	// ShardRemove, when non-nil, drains that shard gracefully: no new
	// work routes to it and it goes Down once empty. Sharded stacks
	// only.
	ShardRemove *int
	// ShardAdd, when true, joins a fresh shard built by Stack.NewShard.
	// Sharded stacks only.
	ShardAdd bool
	// churn marks a generator-synthesized fail event, which is skipped
	// if it would take the last Up shard down.
	churn bool
}

// Phase is one segment of a scenario: a traffic source run for
// Duration simulated seconds, with optional control events.
type Phase struct {
	// Name labels the phase in reports and snapshots (defaults to the
	// kind).
	Name string
	Kind Kind
	// Duration is the phase length in simulated seconds (>= 0; a
	// zero-duration phase starts and stops its driver at one instant,
	// injecting only what the driver does synchronously at start).
	Duration float64
	// Clients / ThinkTime configure KindClosed (0 clients = 100;
	// ThinkTime is the mean of an exponential think time, 0 = none).
	Clients   int
	ThinkTime float64
	// Lambda is the arrival rate for KindOpen/KindBurst and the
	// starting rate for KindRamp; Lambda2 is KindRamp's ending rate.
	Lambda, Lambda2 float64
	// BurstFactor / BurstPeriod configure KindBurst: the on/off state
	// rates differ by Factor², normalized so the long-run mean rate is
	// exactly Lambda; sojourns are exponential with mean Period
	// seconds. Defaults: factor 2, period 100 mean interarrivals.
	BurstFactor, BurstPeriod float64
	// DiurnalAmp / DiurnalPeriod configure KindDiurnal (required there:
	// amplitude in (0,1], period > 0; optional overlay on KindFlash):
	// the rate swings between Lambda·(1−Amp) and Lambda·(1+Amp) with
	// the given period in seconds.
	DiurnalAmp, DiurnalPeriod float64
	// FlashFactor / FlashAt / FlashDuration configure KindFlash
	// (required there: factor >= 1, duration > 0; optional overlay on
	// KindDiurnal): for FlashDuration seconds starting FlashAt seconds
	// into the phase, the instantaneous rate is multiplied by
	// FlashFactor.
	FlashFactor, FlashAt, FlashDuration float64
	// Trace / TraceSpeedup configure KindTrace (Speedup 0 = 1).
	Trace        *trace.Trace
	TraceSpeedup float64
	// Churn, when non-nil, runs the deterministic MTBF/MTTR fault
	// generator for this phase's duration (sharded stacks only); the
	// generated fail/recover events merge with Events.
	Churn  *ChurnSpec
	Events []Event
}

// label returns the phase's display name.
func (p Phase) label() string {
	if p.Name != "" {
		return p.Name
	}
	return string(p.Kind)
}

// AutoscaleSpec arms the fleet autoscaler for the whole run: a
// hysteresis controller (internal/autoscale) ticking every Interval
// simulated seconds from the moment the measurement window opens,
// reading the fleet's mean per-up-shard backlog ((queued+inflight)/up)
// and growing or draining the shard set within [Min, Max]. Scale-ups
// reuse a parked (Down or Draining) slot first and only build a fresh
// shard through Stack.NewShard when every slot is serving; scale-downs
// drain the highest-index Up shard. Sharded stacks only.
type AutoscaleSpec struct {
	// Min / Max bound the Up fleet size (1 <= Min <= Max).
	Min, Max int
	// Interval is the controller tick period in simulated seconds
	// (0 = 1).
	Interval float64
	// HighWater / LowWater are the per-up-shard backlog watermarks:
	// signal >= HighWater for BreachWindows consecutive ticks scales
	// up, signal <= LowWater for CalmWindows ticks scales down, and
	// the band between them holds. Zero values take the
	// internal/autoscale defaults (HighWater 8, LowWater HighWater/4).
	HighWater, LowWater float64
	// BreachWindows / CalmWindows are the consecutive-tick thresholds
	// (0 = defaults: 2, and 3x BreachWindows).
	BreachWindows, CalmWindows int
	// Cooldown is the minimum time between actions in simulated
	// seconds (0 = 2x Interval).
	Cooldown float64
	// MPLPerShard, when > 0, retargets the cluster-wide MPL to
	// MPLPerShard slots per Up shard after every fleet change, so
	// admitted concurrency scales with capacity instead of staying
	// pinned at the configured total.
	MPLPerShard int
}

// config translates the spec to the controller's vocabulary.
func (a AutoscaleSpec) config() autoscale.Config {
	return autoscale.Config{
		Min:           a.Min,
		Max:           a.Max,
		Interval:      a.Interval,
		HighWater:     a.HighWater,
		LowWater:      a.LowWater,
		BreachWindows: a.BreachWindows,
		CalmWindows:   a.CalmWindows,
		Cooldown:      a.Cooldown,
	}
}

// Validate checks an autoscale spec without touching a stack.
func (a AutoscaleSpec) Validate() error {
	if a.MPLPerShard < 0 {
		return fmt.Errorf("runner: autoscale MPL per shard %d must be >= 0", a.MPLPerShard)
	}
	return a.config().Validate()
}

// Spec is a full scenario: warmup, then the phases in order.
type Spec struct {
	// Warmup is discarded simulated seconds driven by the FIRST
	// phase's traffic source before the measurement window opens.
	Warmup float64
	// SampleInterval, when > 0, emits one metrics.Snapshot to every
	// observer each interval (windowed: counters cover the interval).
	SampleInterval float64
	// Autoscale, when non-nil, arms the fleet autoscaler for the whole
	// run (sharded stacks only).
	Autoscale *AutoscaleSpec
	// ParallelShards opts a sharded run into the conservative parallel
	// engine: each shard advances on its own sim.Engine on its own
	// goroutine, synchronized in bounded windows at the dispatcher
	// boundary (Stack.Par must be set on sharded stacks). Snapshot and
	// windowing rules are unchanged — every breakpoint still observes
	// all clocks standing at the same instant. On an unsharded stack
	// the knob is a no-op (there is only one engine to run).
	ParallelShards bool
	Phases         []Phase
}

// finite reports whether every value is a finite float — the
// executor schedules events at these offsets, and the engine (rightly)
// panics on NaN/Inf times, so Validate must reject them first. JSON
// cannot encode non-finite numbers, but scenarios built in code can.
func finite(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Validate checks the spec's shape without touching a stack.
func (s Spec) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("runner: scenario has no phases")
	}
	if s.Warmup < 0 || !finite(s.Warmup) {
		return fmt.Errorf("runner: warmup %v must be finite and >= 0", s.Warmup)
	}
	if s.SampleInterval < 0 || !finite(s.SampleInterval) {
		return fmt.Errorf("runner: sample interval %v must be finite and >= 0", s.SampleInterval)
	}
	if s.Autoscale != nil {
		if err := s.Autoscale.Validate(); err != nil {
			return err
		}
	}
	for i, ph := range s.Phases {
		prefix := fmt.Sprintf("runner: phase %d (%s)", i, ph.label())
		if !finite(ph.Duration, ph.ThinkTime, ph.Lambda, ph.Lambda2, ph.BurstFactor, ph.BurstPeriod, ph.TraceSpeedup,
			ph.DiurnalAmp, ph.DiurnalPeriod, ph.FlashFactor, ph.FlashAt, ph.FlashDuration) {
			return fmt.Errorf("%s: parameters must be finite", prefix)
		}
		if ph.Duration < 0 {
			return fmt.Errorf("%s: duration %v must be >= 0", prefix, ph.Duration)
		}
		switch ph.Kind {
		case KindClosed:
			if ph.Clients < 0 {
				return fmt.Errorf("%s: clients %d must be >= 0", prefix, ph.Clients)
			}
			if ph.ThinkTime < 0 {
				return fmt.Errorf("%s: think time %v must be >= 0", prefix, ph.ThinkTime)
			}
		case KindOpen:
			if ph.Lambda <= 0 {
				return fmt.Errorf("%s: lambda %v must be positive", prefix, ph.Lambda)
			}
		case KindRamp:
			if ph.Lambda < 0 || ph.Lambda2 < 0 || (ph.Lambda == 0 && ph.Lambda2 == 0) {
				return fmt.Errorf("%s: ramp rates %v -> %v must be >= 0 with a positive peak", prefix, ph.Lambda, ph.Lambda2)
			}
			if ph.Duration <= 0 {
				return fmt.Errorf("%s: a ramp needs a positive duration", prefix)
			}
		case KindBurst:
			if ph.Lambda <= 0 {
				return fmt.Errorf("%s: lambda %v must be positive", prefix, ph.Lambda)
			}
			if ph.BurstFactor < 0 || (ph.BurstFactor > 0 && ph.BurstFactor < 1) {
				return fmt.Errorf("%s: burst factor %v must be >= 1 (0 = default)", prefix, ph.BurstFactor)
			}
			if ph.BurstPeriod < 0 {
				return fmt.Errorf("%s: burst period %v must be >= 0 (0 = default)", prefix, ph.BurstPeriod)
			}
		case KindTrace:
			if ph.Trace == nil || ph.Trace.Len() == 0 {
				return fmt.Errorf("%s: a trace phase needs a non-empty trace", prefix)
			}
			if err := ph.Trace.Validate(); err != nil {
				return fmt.Errorf("%s: %w", prefix, err)
			}
			if ph.TraceSpeedup < 0 {
				return fmt.Errorf("%s: trace speedup %v must be >= 0 (0 = 1)", prefix, ph.TraceSpeedup)
			}
		case KindDiurnal:
			if ph.Lambda <= 0 {
				return fmt.Errorf("%s: lambda %v must be positive", prefix, ph.Lambda)
			}
			if ph.DiurnalAmp <= 0 || ph.DiurnalAmp > 1 {
				return fmt.Errorf("%s: diurnal amplitude %v must be in (0,1]", prefix, ph.DiurnalAmp)
			}
			if ph.DiurnalPeriod <= 0 {
				return fmt.Errorf("%s: diurnal period %v must be positive", prefix, ph.DiurnalPeriod)
			}
			if ph.FlashFactor != 0 && ph.FlashFactor < 1 {
				return fmt.Errorf("%s: flash factor %v must be >= 1 (0 = none)", prefix, ph.FlashFactor)
			}
			if ph.FlashAt < 0 || ph.FlashDuration < 0 {
				return fmt.Errorf("%s: flash window [%v, +%v) must be >= 0", prefix, ph.FlashAt, ph.FlashDuration)
			}
		case KindFlash:
			if ph.Lambda <= 0 {
				return fmt.Errorf("%s: lambda %v must be positive", prefix, ph.Lambda)
			}
			if ph.FlashFactor < 1 {
				return fmt.Errorf("%s: flash factor %v must be >= 1", prefix, ph.FlashFactor)
			}
			if ph.FlashAt < 0 || ph.FlashDuration <= 0 {
				return fmt.Errorf("%s: flash window [%v, +%v) needs a positive duration and offset >= 0", prefix, ph.FlashAt, ph.FlashDuration)
			}
			if ph.DiurnalAmp != 0 {
				if ph.DiurnalAmp < 0 || ph.DiurnalAmp > 1 {
					return fmt.Errorf("%s: diurnal amplitude %v must be in (0,1] (0 = none)", prefix, ph.DiurnalAmp)
				}
				if ph.DiurnalPeriod <= 0 {
					return fmt.Errorf("%s: diurnal period %v must be positive", prefix, ph.DiurnalPeriod)
				}
			}
		default:
			return fmt.Errorf("%s: unknown kind %q (want %s, %s, %s, %s, %s, %s or %s)",
				prefix, ph.Kind, KindClosed, KindOpen, KindRamp, KindBurst, KindTrace, KindDiurnal, KindFlash)
		}
		if ph.Churn != nil {
			if err := ph.Churn.Validate(); err != nil {
				return fmt.Errorf("%s: %w", prefix, err)
			}
		}
		for j, ev := range ph.Events {
			if ev.At < 0 || !finite(ev.At) {
				return fmt.Errorf("%s event %d: offset %v must be finite and >= 0", prefix, j, ev.At)
			}
			if ev.SetMPL != nil && *ev.SetMPL < 0 {
				return fmt.Errorf("%s event %d: MPL %d must be >= 0", prefix, j, *ev.SetMPL)
			}
			if ev.SetWFQHighWeight != nil && (*ev.SetWFQHighWeight <= 0 || !finite(*ev.SetWFQHighWeight)) {
				return fmt.Errorf("%s event %d: WFQ weight %v must be positive", prefix, j, *ev.SetWFQHighWeight)
			}
			for c, w := range ev.SetWeights {
				if w <= 0 || !finite(w) {
					return fmt.Errorf("%s event %d: class %d WFQ weight %v must be positive", prefix, j, c, w)
				}
			}
			for c, l := range ev.SetTenantLimits {
				if l < 1 {
					return fmt.Errorf("%s event %d: class %d tenant limit %d must be >= 1", prefix, j, c, l)
				}
			}
			for c, d := range ev.SetTenantDeadlines {
				if d < 0 || !finite(d) {
					return fmt.Errorf("%s event %d: class %d admit deadline %v must be finite and >= 0", prefix, j, c, d)
				}
			}
			if ev.EnableFairness != nil {
				if err := ev.EnableFairness.Validate(); err != nil {
					return fmt.Errorf("%s event %d: %w", prefix, j, err)
				}
			}
			if ss := ev.SetShardSpeed; ss != nil {
				if ss.Shard < 0 {
					return fmt.Errorf("%s event %d: shard %d must be >= 0", prefix, j, ss.Shard)
				}
				if ss.Speed <= 0 || !finite(ss.Speed) {
					return fmt.Errorf("%s event %d: shard speed %v must be positive", prefix, j, ss.Speed)
				}
			}
			if ev.SetDispatch != "" {
				if _, err := cluster.NewPolicy(ev.SetDispatch); err != nil {
					return fmt.Errorf("%s event %d: %w", prefix, j, err)
				}
			}
			if ev.EnableController != nil {
				cs := ev.EnableController
				if cs.MaxThroughputLoss < 0 || cs.MaxThroughputLoss >= 1 {
					return fmt.Errorf("%s event %d: MaxThroughputLoss %v outside [0,1)", prefix, j, cs.MaxThroughputLoss)
				}
				if cs.ReferenceThroughput <= 0 {
					return fmt.Errorf("%s event %d: ReferenceThroughput required", prefix, j)
				}
			}
			if ev.SetSLO != nil {
				if err := ev.SetSLO.Validate(); err != nil {
					return fmt.Errorf("%s event %d: %w", prefix, j, err)
				}
			}
			if cl := ev.SetClassLimits; cl != nil {
				if err := cl.Validate(); err != nil {
					return fmt.Errorf("%s event %d: %w", prefix, j, err)
				}
			}
			if ad := ev.SetAdmitDeadline; ad != nil {
				if err := ad.Validate(); err != nil {
					return fmt.Errorf("%s event %d: %w", prefix, j, err)
				}
			}
			for _, sh := range []struct {
				name string
				idx  *int
			}{
				{"shard_fail", ev.ShardFail},
				{"shard_recover", ev.ShardRecover},
				{"shard_remove", ev.ShardRemove},
			} {
				if sh.idx != nil && *sh.idx < 0 {
					return fmt.Errorf("%s event %d: %s shard %d must be >= 0", prefix, j, sh.name, *sh.idx)
				}
			}
		}
	}
	return nil
}

// Validate checks an SLOSpec's standalone fields.
func (s SLOSpec) Validate() error {
	if !finite(s.Target, s.Percentile, s.Margin) {
		return fmt.Errorf("runner: SLO parameters must be finite")
	}
	if s.Target <= 0 {
		return fmt.Errorf("runner: SLO target %v must be positive seconds", s.Target)
	}
	if s.Percentile < 0 || s.Percentile >= 100 {
		return fmt.Errorf("runner: SLO percentile %v outside [0,100) (0 = 95)", s.Percentile)
	}
	if s.Margin < 0 || s.Margin >= 1 {
		return fmt.Errorf("runner: SLO margin %v outside [0,1) (0 = 0.5)", s.Margin)
	}
	if s.MinObservations < 0 {
		return fmt.Errorf("runner: SLO MinObservations %d must be >= 0", s.MinObservations)
	}
	return nil
}

// Validate checks a ClassLimits partition: both limits >= 1, or both
// zero (clear).
func (cl ClassLimits) Validate() error {
	if cl.High == 0 && cl.Low == 0 {
		return nil
	}
	if cl.High < 1 || cl.Low < 1 {
		return fmt.Errorf("runner: class limits high=%d low=%d must both be >= 1 (or both 0 to clear)", cl.High, cl.Low)
	}
	return nil
}

// Validate checks admission deadlines: finite, >= 0.
func (ad AdmitDeadline) Validate() error {
	if !finite(ad.High, ad.Low) || ad.High < 0 || ad.Low < 0 {
		return fmt.Errorf("runner: admit deadlines high=%v low=%v must be finite and >= 0", ad.High, ad.Low)
	}
	return nil
}

// Stack is the assembled simulation the spec runs on. Exactly one of
// two shapes: single-backend (DB + FE set, Cluster nil) or sharded
// (Cluster set, DB/FE ignored). The runner owns the completion hooks
// (FE.OnComplete or Cluster.OnComplete) for the duration of the run.
type Stack struct {
	Eng *sim.Engine
	DB  *dbms.DB
	FE  *dbfe.Frontend
	// Cluster, when non-nil, replaces DB/FE with a sharded dispatch
	// fabric: drivers submit through it, control events address it, and
	// the runner reports per-shard slices next to the aggregates.
	Cluster *cluster.Dispatcher
	// Recovery configures what happens to the work a failed shard held
	// (sharded stacks only). Nil arms the zero policy — shed: the work
	// is lost and counted in Failed. The runner arms the cluster's
	// fault model unconditionally, so every sharded run reports
	// lifecycle state and availability.
	Recovery *cluster.RecoveryPolicy
	// NewShard, when non-nil, builds the shard a ShardAdd event joins
	// (index is the position the new shard will occupy). A ShardAdd
	// event without a factory is an error.
	NewShard func(index int) (cluster.Shard, error)
	Gen      *workload.Generator
	// PercentileSamples, when > 0, reservoir-samples response times
	// over the whole measurement window (deterministic given Seed).
	PercentileSamples int
	Seed              uint64
	// SLO, when non-nil, attaches the latency-SLO controller for the
	// whole run, from the moment the measurement window opens (an
	// event-free way to run a scenario under SLO control; scenario
	// SetSLO events can still replace it). Unsharded stacks only.
	SLO *SLOSpec
	// Fairness, when non-nil, attaches the N-tenant max-min fairness
	// controller for the whole run, from the moment the measurement
	// window opens. Unsharded stacks only; mutually exclusive with SLO.
	Fairness *FairnessSpec
	// ClassNames labels tenant classes in per-class reports and
	// snapshots. Classes absent from the map fall back to the
	// frontend's tenant registry (core.Frontend.RegisterClass) on
	// unsharded stacks, then to the empty string.
	ClassNames map[core.Class]string
	// Par, when non-nil, is the conservative parallel ensemble over Eng
	// (the coordinator) and the shards' member engines. The runner
	// drives it instead of Eng whenever Spec.ParallelShards is set,
	// switching the horizon rule per phase (lockstep for closed-loop
	// phases, coordinator-horizon otherwise). Requires a sharded stack
	// whose shards were each built on their own engine (Shard.Eng set).
	Par *sim.ParallelEngine
}

// Gate returns the control surface the MPL events and the feedback
// controller act on: the lone frontend, or the cluster dispatcher.
func (st Stack) Gate() controller.Gate {
	if st.Cluster != nil {
		return st.Cluster
	}
	return st.FE.Frontend
}

// sink returns what the workload drivers submit to.
func (st Stack) sink() workload.Sink {
	if st.Cluster != nil {
		return st.Cluster
	}
	return st.FE
}

// Report aggregates one window (the whole run, or one phase's slice of
// it). Accumulators expose mean/variance/C² etc.; counter fields are
// deltas over the window.
type Report struct {
	// Window is the report's length in simulated seconds.
	Window float64
	// Completed counts completions inside the window.
	Completed uint64
	// All/High/Low accumulate response times (external queueing
	// included); Inside the time within the backend; ExtWait the
	// external queueing portion.
	All, High, Low, Inside, ExtWait stats.Accumulator
	// Restarts counts abort/restart cycles; Dropped admission-control
	// rejections.
	Restarts, Dropped uint64
	// Shed counts deadline-missed rejections in the window;
	// ShedHigh/ShedLow split it by class.
	Shed, ShedHigh, ShedLow uint64
	// Failed counts transactions terminally lost to shard failures in
	// the window; Resubmitted counts logical txns re-routed to a
	// survivor at least once; Retries counts resubmission events.
	Failed, Resubmitted, Retries uint64
	// CPUUtil / DiskUtil are device utilizations over the window.
	CPUUtil, DiskUtil float64
	// LockWaits / Deadlocks / Preemptions are lock-manager deltas.
	LockWaits, Deadlocks, Preemptions uint64
	// P50/P95/P99 are run-so-far response-time percentiles (zero
	// unless Stack.PercentileSamples was set); HighP95/LowP95 split the
	// tail by priority class — the SLO signal.
	P50, P95, P99   float64
	HighP95, LowP95 float64
	// Classes is the per-tenant breakdown of the window, in ascending
	// class-ID order: one entry for every class that completed or shed
	// work. The N-tenant generalization of the High/Low fields above
	// (which remain for the two-class figures).
	Classes []ClassReport
}

// ClassReport is one tenant class's slice of a Report window.
type ClassReport struct {
	Class core.Class
	// Name is the registered tenant name (Stack.ClassNames or the
	// frontend's tenant registry; empty when neither knows the class).
	Name string
	// Completed counts the class's completions in the window; Shed its
	// deadline-shed rejections.
	Completed, Shed uint64
	// Mean is the class's mean response time; P95 its run-so-far 95th
	// percentile (0 unless Stack.PercentileSamples is set — and only in
	// whole-run reports, phase slices have no per-class reservoir).
	Mean, P95 float64
}

// Throughput returns completions per second over the window.
func (r Report) Throughput() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Window
}

// CoreMetrics converts the report to the core.Metrics vocabulary.
func (r Report) CoreMetrics() core.Metrics {
	return core.Metrics{
		Completed: r.Completed,
		All:       r.All,
		High:      r.High,
		Low:       r.Low,
		Inside:    r.Inside,
		ExtWait:   r.ExtWait,
		Restarts:  r.Restarts,
	}.WithWindow(r.Window)
}

// PhaseReport is one phase's slice of the measurement window.
type PhaseReport struct {
	Name string
	Kind Kind
	Report
}

// ShardReport is one shard's slice of the whole measurement window
// (sharded stacks only). Lock counters and device utilizations are the
// shard's own; Dispatched counts the arrivals the dispatcher routed to
// it inside the window.
type ShardReport struct {
	Shard int
	// Speed is the shard's relative CPU speed when the run ended.
	Speed      float64
	Dispatched uint64
	// State is the shard's lifecycle state when the run ended ("up",
	// "draining", "down").
	State string
	// Availability is the fraction of the measurement window the shard
	// was serving (a shard added mid-run accrues only from its join).
	Availability float64
	// P95 is the shard's own response-time 95th percentile, estimated
	// with a constant-memory P² quantile tracker (percentile mode only;
	// 0 otherwise). Unlike the aggregate reservoir percentiles this
	// costs O(1) memory per shard, which is what keeps per-shard
	// reporting affordable at thousand-shard fleets.
	P95 float64
	Report
}

// TuneReport summarizes a controller-enabled run.
type TuneReport struct {
	StartMPL   int
	FinalMPL   int
	Iterations int
	Converged  bool
}

// SLOReport summarizes an SLO-controlled run: the final class
// partition and the loop's activity.
type SLOReport struct {
	// Class is the protected class; SLOLimit/OtherLimit the final slot
	// partition (they sum to the final MPL).
	Class                core.Class
	SLOLimit, OtherLimit int
	// Iterations counts completed SLO reactions; LastMeasured is the
	// last closed window's measured percentile (0 before any window
	// closed).
	Iterations   int
	LastMeasured float64
}

// FairnessReport summarizes a fairness-controlled run: the final
// tenant partition and the loop's activity.
type FairnessReport struct {
	// Limits is the final per-tenant slot partition (sums to the final
	// MPL).
	Limits map[core.Class]int
	// Iterations counts completed fairness reactions; Moves how many of
	// them actually moved a slot.
	Iterations, Moves int
}

// AutoscaleReport summarizes an autoscaled run's fleet trajectory.
type AutoscaleReport struct {
	// ScaleUps / ScaleDowns count controller actions over the run.
	ScaleUps, ScaleDowns uint64
	// FinalFleet is the Up shard count when the run ended; PeakFleet
	// and MinFleet the extremes observed at controller ticks.
	FinalFleet, PeakFleet, MinFleet int
	// ShardSeconds is the total shard-up time accrued inside the
	// measurement window (summed over all slots) — the capacity bill
	// an autoscaled fleet is trying to shrink versus a fixed one.
	ShardSeconds float64
}

// Outcome is a completed run.
type Outcome struct {
	Total  Report
	Phases []PhaseReport
	// Shards holds each shard's slice of the whole window (nil for
	// single-backend stacks).
	Shards []ShardReport
	// Tune is non-nil when an EnableController event fired.
	Tune *TuneReport
	// SLO is non-nil when the latency-SLO controller ran (Stack.SLO or
	// a SetSLO event).
	SLO *SLOReport
	// Fairness is non-nil when the max-min fairness controller ran
	// (Stack.Fairness or an EnableFairness event).
	Fairness *FairnessReport
	// Autoscale is non-nil when Spec.Autoscale armed the fleet
	// autoscaler.
	Autoscale *AutoscaleReport
	// FinalMPL is the MPL when the run ended (events or the controller
	// may have moved it from the configured value). For sharded stacks
	// it is the cluster-wide limit (sum of shard limits; 0 if any shard
	// is unlimited).
	FinalMPL int
}

// mark captures the cumulative counters a windowed delta is taken
// against.
type mark struct {
	t                       float64
	dropped, canceled       uint64
	shed, shedHigh, shedLow uint64
	// shedClass splits shed by tenant class (nil while nothing shed).
	shedClass              map[core.Class]uint64
	waits, dl, preempt     uint64
	failed, resub, retries uint64
	cpuBusy, diskBusy      float64 // utilization·time products
	// shards are the per-shard cumulative counters (sharded stacks).
	shards []shardMark
}

type shardMark struct {
	routed, dropped, canceled uint64
	shed, shedHigh, shedLow   uint64
	waits, dl, preempt        uint64
	cpuBusy, diskBusy         float64
	upSec                     float64
}

func takeMark(st Stack) mark {
	m := mark{t: st.Eng.Now()}
	if c := st.Cluster; c != nil {
		m.dropped, m.canceled = c.Dropped(), c.Canceled()
		m.failed, m.resub, m.retries = c.Failed(), c.Resubmitted(), c.Retries()
		shards := c.Shards()
		routed := c.Routed()
		m.shards = make([]shardMark, len(shards))
		n := float64(len(shards))
		for i, sh := range shards {
			sm := &m.shards[i]
			sm.routed = routed[i]
			sm.upSec = c.UpSeconds(i)
			sm.dropped, sm.canceled = sh.FE.Dropped(), sh.FE.Canceled()
			sm.shed = sh.FE.Shed()
			sm.shedHigh = sh.FE.ShedByClass(core.ClassHigh)
			sm.shedLow = sm.shed - sm.shedHigh
			m.shed += sm.shed
			m.shedHigh += sm.shedHigh
			m.shedLow += sm.shedLow
			for c, n := range sh.FE.ShedClasses() {
				if m.shedClass == nil {
					m.shedClass = make(map[core.Class]uint64)
				}
				m.shedClass[c] += n
			}
			if sh.DB != nil {
				s := sh.DB.Stats()
				sm.waits, sm.dl, sm.preempt = s.Lock.Waits, s.Lock.Deadlocks, s.Lock.Preemptions
				m.waits += sm.waits
				m.dl += sm.dl
				m.preempt += sm.preempt
				sm.cpuBusy = sh.DB.CPUUtilization() * m.t
				sm.diskBusy = sh.DB.DiskUtilization() * m.t
				// The aggregate utilization is the fleet mean, so the
				// windowed delta math below holds shard-count-free.
				m.cpuBusy += sm.cpuBusy / n
				m.diskBusy += sm.diskBusy / n
			}
		}
		return m
	}
	m.dropped, m.canceled = st.FE.Dropped(), st.FE.Canceled()
	m.shed = st.FE.Shed()
	m.shedHigh = st.FE.ShedByClass(core.ClassHigh)
	m.shedLow = m.shed - m.shedHigh
	m.shedClass = st.FE.ShedClasses()
	if st.DB != nil {
		s := st.DB.Stats()
		m.waits, m.dl, m.preempt = s.Lock.Waits, s.Lock.Deadlocks, s.Lock.Preemptions
		m.cpuBusy = st.DB.CPUUtilization() * m.t
		m.diskBusy = st.DB.DiskUtilization() * m.t
	}
	return m
}

// utilDelta recovers the utilization over (a.t, b.t] from two
// cumulative-utilization marks.
func utilDelta(aBusy, bBusy, at, bt float64) float64 {
	if bt <= at {
		return 0
	}
	return (bBusy - aBusy) / (bt - at)
}

// acc accumulates completions for one window scope.
type acc struct {
	completed                       uint64
	all, high, low, inside, extwait stats.Accumulator
	restarts                        uint64
	// classes accumulates response times per tenant class (lazily: nil
	// until the first completion, one entry per distinct class seen).
	classes map[core.Class]*stats.Accumulator
}

func (a *acc) observe(t *dbfe.Txn) {
	a.completed++
	rt := t.Item.ResponseTime()
	a.all.Add(rt)
	if t.Item.Class == core.ClassHigh {
		a.high.Add(rt)
	} else {
		a.low.Add(rt)
	}
	ca := a.classes[t.Item.Class]
	if ca == nil {
		if a.classes == nil {
			a.classes = make(map[core.Class]*stats.Accumulator)
		}
		ca = &stats.Accumulator{}
		a.classes[t.Item.Class] = ca
	}
	ca.Add(rt)
	a.inside.Add(t.Item.Outcome.InsideTime)
	a.extwait.Add(t.Item.ExternalWait())
	a.restarts += uint64(t.Item.Outcome.Restarts)
}

func (a *acc) reset() {
	classes := a.classes
	*a = acc{}
	// Keep the map (reset in place) so steady-state windows allocate
	// nothing per interval.
	for _, ca := range classes {
		ca.Reset()
	}
	a.classes = classes
}

// className resolves a class's display name: the stack's explicit map
// first, then the unsharded frontend's tenant registry.
func className(st Stack, c core.Class) string {
	if n, ok := st.ClassNames[c]; ok {
		return n
	}
	if st.Cluster == nil && st.FE != nil {
		return st.FE.TenantName(c)
	}
	return ""
}

// classReports assembles the per-tenant breakdown of one window: every
// class that completed or shed work between the marks, ascending.
// resClass, when non-nil, supplies run-so-far per-class percentiles.
func classReports(st Stack, a *acc, from, to mark, resClass map[core.Class]*stats.Reservoir) []ClassReport {
	ids := make(map[core.Class]struct{}, len(a.classes))
	for c, ca := range a.classes {
		if ca.Count() > 0 {
			ids[c] = struct{}{}
		}
	}
	for c, n := range to.shedClass {
		if n > from.shedClass[c] {
			ids[c] = struct{}{}
		}
	}
	if len(ids) == 0 {
		return nil
	}
	classes := make([]core.Class, 0, len(ids))
	for c := range ids {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	out := make([]ClassReport, len(classes))
	for i, c := range classes {
		cr := ClassReport{
			Class: c,
			Name:  className(st, c),
			Shed:  to.shedClass[c] - from.shedClass[c],
		}
		if ca := a.classes[c]; ca != nil {
			cr.Completed = uint64(ca.Count())
			cr.Mean = ca.Mean()
		}
		if rv := resClass[c]; rv != nil {
			cr.P95 = rv.Percentile(95)
		}
		out[i] = cr
	}
	return out
}

// report assembles a Report from an accumulator scope and its marks.
func (a *acc) report(st Stack, from mark, res, resHigh, resLow *stats.Reservoir, resClass map[core.Class]*stats.Reservoir) Report {
	to := takeMark(st)
	r := Report{
		Window:      to.t - from.t,
		Completed:   a.completed,
		All:         a.all,
		High:        a.high,
		Low:         a.low,
		Inside:      a.inside,
		ExtWait:     a.extwait,
		Restarts:    a.restarts,
		Dropped:     to.dropped - from.dropped,
		Shed:        to.shed - from.shed,
		ShedHigh:    to.shedHigh - from.shedHigh,
		ShedLow:     to.shedLow - from.shedLow,
		LockWaits:   to.waits - from.waits,
		Deadlocks:   to.dl - from.dl,
		Preemptions: to.preempt - from.preempt,
		Failed:      to.failed - from.failed,
		Resubmitted: to.resub - from.resub,
		Retries:     to.retries - from.retries,
		CPUUtil:     utilDelta(from.cpuBusy, to.cpuBusy, from.t, to.t),
		DiskUtil:    utilDelta(from.diskBusy, to.diskBusy, from.t, to.t),
	}
	if res != nil {
		r.P50 = res.Percentile(50)
		r.P95 = res.Percentile(95)
		r.P99 = res.Percentile(99)
	}
	if resHigh != nil {
		r.HighP95 = resHigh.Percentile(95)
	}
	if resLow != nil {
		r.LowP95 = resLow.Percentile(95)
	}
	r.Classes = classReports(st, a, from, to, resClass)
	return r
}

// buildDriver assembles the phase's traffic source.
func buildDriver(st Stack, ph Phase) (workload.Driver, error) {
	sink := st.sink()
	switch ph.Kind {
	case KindClosed:
		clients := ph.Clients
		if clients <= 0 {
			clients = 100
		}
		var think dist.Distribution
		if ph.ThinkTime > 0 {
			think = dist.NewExponential(ph.ThinkTime)
		}
		return workload.NewClosedDriver(st.Eng, sink, st.Gen, clients, think), nil
	case KindOpen:
		return workload.NewOpenDriver(st.Eng, sink, st.Gen, ph.Lambda, 0), nil
	case KindRamp:
		return workload.NewRampDriver(st.Eng, sink, st.Gen, ph.Lambda, ph.Lambda2, ph.Duration), nil
	case KindBurst:
		factor := ph.BurstFactor
		if factor == 0 {
			factor = 2
		}
		period := ph.BurstPeriod
		if period == 0 {
			period = 100 / ph.Lambda
		}
		return workload.NewBurstDriver(st.Eng, sink, st.Gen, ph.Lambda, factor, period), nil
	case KindDiurnal, KindFlash:
		return workload.NewShapedDriver(st.Eng, sink, st.Gen, workload.ShapedConfig{
			Base:          ph.Lambda,
			Amp:           ph.DiurnalAmp,
			Period:        ph.DiurnalPeriod,
			FlashFactor:   ph.FlashFactor,
			FlashAt:       ph.FlashAt,
			FlashDuration: ph.FlashDuration,
		}), nil
	case KindTrace:
		d, err := workload.NewTraceDriver(st.Eng, sink, ph.Trace)
		if err != nil {
			return nil, err
		}
		if ph.TraceSpeedup > 0 {
			d.Speedup = ph.TraceSpeedup
		}
		return d, nil
	default:
		return nil, fmt.Errorf("runner: unknown phase kind %q", ph.Kind)
	}
}

// run carries the mutable state of one execution.
type run struct {
	st   Stack
	spec Spec
	obs  []metrics.Observer

	measuring bool
	total     acc
	phase     acc
	window    acc
	res       *stats.Reservoir
	// resHigh / resLow sample response times per class (run-so-far,
	// like res) for the HighP95/LowP95 report and snapshot fields.
	resHigh, resLow *stats.Reservoir
	// resClass samples response times per tenant class (run-so-far) for
	// the per-class P95 report and snapshot fields. Lazily built, one
	// reservoir per distinct class seen, on its own seeded stream — the
	// legacy res/resHigh/resLow draws are untouched, so historical
	// two-class figures stay bit-identical.
	resClass map[core.Class]*stats.Reservoir
	// shardTotal / winShard split the window per shard (sharded stacks
	// only): whole-window accumulators for Outcome.Shards, and
	// per-interval completion counts for Snapshot.Shards.
	shardTotal []acc
	winShard   []uint64
	// shardP95 tracks each shard's own response-time p95 with a P²
	// estimator — five markers per shard instead of a full reservoir,
	// which keeps per-shard percentiles O(1) memory at thousand-shard
	// fleets (percentile mode only, like res).
	shardP95 []*stats.P2

	totalMark, phaseMark, winMark mark
	nextSnap                      float64

	ctl            *controller.Controller
	tune           *TuneReport
	stopOnConverge bool

	slo      *controller.SLOController
	sloSpec  SLOSpec
	sloFinal *SLOReport

	fair      *fairness.Controller
	fairFinal *FairnessReport

	// asc is the armed fleet autoscaler; ascErr the first error a tick
	// hit (the tick runs inside an engine callback and cannot return
	// one, so it stops the engine and parks the error here for the
	// breakpoint loop to surface).
	asc                 *autoscale.Controller
	ascSpec             AutoscaleSpec
	ascErr              error
	peakFleet, minFleet int
	// snapUps / snapDowns are the action counters at the last emitted
	// snapshot (interval snapshots report deltas).
	snapUps, snapDowns uint64
}

// onComplete is the single completion observer for both stack shapes;
// shard is 0 for single-backend stacks.
func (r *run) onComplete(shard int, t *dbfe.Txn) {
	if r.measuring {
		r.total.observe(t)
		r.phase.observe(t)
		r.window.observe(t)
		if r.shardTotal != nil {
			// A shard_add event can grow the fleet past the slices sized
			// at run start.
			for shard >= len(r.shardTotal) {
				r.shardTotal = append(r.shardTotal, acc{})
				r.winShard = append(r.winShard, 0)
			}
			r.shardTotal[shard].observe(t)
			r.winShard[shard]++
			if r.shardP95 != nil {
				for shard >= len(r.shardP95) {
					r.shardP95 = append(r.shardP95, stats.NewP2(0.95))
				}
				r.shardP95[shard].Add(t.Item.ResponseTime())
			}
		}
		if r.res != nil {
			r.res.Add(t.Item.ResponseTime())
			if t.Item.Class == core.ClassHigh {
				r.resHigh.Add(t.Item.ResponseTime())
			} else {
				r.resLow.Add(t.Item.ResponseTime())
			}
			r.classRes(t.Item.Class).Add(t.Item.ResponseTime())
		}
	}
	if r.slo != nil {
		r.slo.Observe()
	}
	if r.fair != nil {
		r.fair.Observe()
	}
	if r.ctl != nil {
		r.ctl.Observe()
		// StopOnConverge must not wait for the next breakpoint (a
		// scenario without snapshot ticks may have none before the
		// phase's end): halt the engine as soon as the loop settles.
		// The run loop sees Converged() and finishes the run there.
		if r.stopOnConverge && r.ctl.Converged() {
			r.st.Eng.Stop()
		}
	}
}

// classRes returns (building lazily) the run-so-far response-time
// reservoir for tenant class c. Each class samples on its own seeded
// stream, so reservoirs are deterministic regardless of the order
// classes first appear in.
func (r *run) classRes(c core.Class) *stats.Reservoir {
	rv := r.resClass[c]
	if rv == nil {
		if r.resClass == nil {
			r.resClass = make(map[core.Class]*stats.Reservoir)
		}
		seed := r.st.Seed
		if seed == 0 {
			seed = 1
		}
		rv = stats.NewReservoir(r.st.PercentileSamples, sim.NewRNG(seed, 601+2*(uint64(int64(c))&0xffff)))
		r.resClass[c] = rv
	}
	return rv
}

// Run executes spec on st. Observers receive one windowed Snapshot per
// SampleInterval, synchronously on the simulation goroutine (they may
// inspect or adjust the stack from the callback). ctx is checked at
// every internal breakpoint — phase boundaries, events, snapshot ticks
// — and a canceled run returns ctx.Err() with the partial Outcome
// discarded.
func Run(ctx context.Context, st Stack, spec Spec, obs ...metrics.Observer) (Outcome, error) {
	if err := spec.Validate(); err != nil {
		return Outcome{}, err
	}
	r := &run{st: st, spec: spec, obs: obs}
	if st.Par != nil {
		if st.Cluster == nil {
			return Outcome{}, fmt.Errorf("runner: a parallel ensemble needs a sharded stack")
		}
		// The feedback controller actuates SetMPL from inside the
		// per-completion observation path; replayed at window bounds its
		// actuations would land at different instants than a sequential
		// run's, so the combination is refused rather than silently
		// diverging.
		for i, ph := range spec.Phases {
			for _, ev := range ph.Events {
				if ev.EnableController != nil {
					return Outcome{}, fmt.Errorf("runner: phase %d (%s): the feedback controller is not supported with ParallelShards", i, ph.label())
				}
			}
		}
		defer st.Par.Close()
	} else if spec.ParallelShards && st.Cluster != nil {
		return Outcome{}, fmt.Errorf("runner: ParallelShards needs a stack assembled with a parallel ensemble (Stack.Par)")
	}
	if st.PercentileSamples > 0 {
		seed := st.Seed
		if seed == 0 {
			seed = 1
		}
		r.res = stats.NewReservoir(st.PercentileSamples, sim.NewRNG(seed, 31))
		r.resHigh = stats.NewReservoir(st.PercentileSamples, sim.NewRNG(seed, 37))
		r.resLow = stats.NewReservoir(st.PercentileSamples, sim.NewRNG(seed, 41))
	}
	if c := st.Cluster; c != nil {
		// Arm the fault model unconditionally: lifecycle events and the
		// churn generator need it, and an armed-but-unfailed fleet
		// behaves identically to an unarmed one (every shard Up, the
		// filtered dispatch view is the identity).
		rp := cluster.RecoveryPolicy{}
		if st.Recovery != nil {
			rp = *st.Recovery
		}
		if rp.Seed == 0 {
			rp.Seed = st.Seed
		}
		if err := c.SetRecovery(st.Eng, rp); err != nil {
			return Outcome{}, err
		}
		r.shardTotal = make([]acc, c.NumShards())
		r.winShard = make([]uint64, c.NumShards())
		if st.PercentileSamples > 0 {
			r.shardP95 = make([]*stats.P2, c.NumShards())
			for i := range r.shardP95 {
				r.shardP95[i] = stats.NewP2(0.95)
			}
		}
		c.OnComplete = r.onComplete
	} else {
		st.FE.OnComplete = func(t *dbfe.Txn) { r.onComplete(0, t) }
	}
	out := Outcome{}
	for i, ph := range spec.Phases {
		driver, err := buildDriver(st, ph)
		if err != nil {
			return Outcome{}, err
		}
		if st.Par != nil {
			// Closed-loop phases feed completions straight back into
			// submissions, so the window horizon must cover member events
			// too (lockstep); autonomous-arrival phases are bounded by the
			// coordinator's own next event.
			st.Par.SetLockstep(ph.Kind == KindClosed)
		}
		driver.Start()
		if i == 0 {
			// The autoscaler is live from the first arrival, warmup
			// included: a fleet frozen at its starting size while warmup
			// load climbs would open the measurement window buried under
			// a backlog the controller was never allowed to absorb.
			if spec.Autoscale != nil {
				if err := r.armAutoscale(*spec.Autoscale); err != nil {
					return Outcome{}, err
				}
			}
			if spec.Warmup > 0 {
				r.advance(st.Eng.Now() + spec.Warmup)
				if err := ctx.Err(); err != nil {
					return Outcome{}, err
				}
				if r.ascErr != nil {
					return Outcome{}, r.ascErr
				}
			}
			r.beginMeasurement()
			if st.SLO != nil {
				if err := r.attachSLO(*st.SLO); err != nil {
					return Outcome{}, err
				}
			}
			if st.Fairness != nil {
				if err := r.attachFairness(*st.Fairness); err != nil {
					return Outcome{}, err
				}
			}
		}
		stopped, err := r.runPhase(ctx, ph)
		driver.Stop()
		if err != nil {
			return Outcome{}, err
		}
		out.Phases = append(out.Phases, PhaseReport{
			Name:   ph.label(),
			Kind:   ph.Kind,
			Report: r.phase.report(st, r.phaseMark, nil, nil, nil, nil),
		})
		r.phase.reset()
		r.phaseMark = takeMark(st)
		if stopped {
			break
		}
	}
	r.measuring = false
	out.Total = r.total.report(st, r.totalMark, r.res, r.resHigh, r.resLow, r.resClass)
	out.Shards = r.shardReports()
	out.FinalMPL = st.Gate().MPL()
	if r.tune != nil {
		t := *r.tune
		if r.ctl != nil { // still attached; a disable event already froze t
			t.FinalMPL = out.FinalMPL
			t.Iterations = r.ctl.Iterations()
			t.Converged = r.ctl.Converged()
		}
		out.Tune = &t
	}
	if r.slo != nil {
		out.SLO = r.sloReport()
	} else if r.sloFinal != nil {
		out.SLO = r.sloFinal
	}
	if r.fair != nil {
		out.Fairness = r.fairReport()
	} else if r.fairFinal != nil {
		out.Fairness = r.fairFinal
	}
	if r.asc != nil {
		out.Autoscale = r.autoscaleReport()
	}
	return out, nil
}

// armAutoscale builds the fleet controller and starts its tick timer
// at the engine's current time (the measurement-window open).
func (r *run) armAutoscale(spec AutoscaleSpec) error {
	c := r.st.Cluster
	if c == nil {
		return fmt.Errorf("runner: autoscale on an unsharded system")
	}
	if spec.Max > c.NumShards() && r.st.NewShard == nil {
		return fmt.Errorf("runner: autoscale max %d exceeds the %d built shards and the stack has no NewShard factory", spec.Max, c.NumShards())
	}
	asc, err := autoscale.New(spec.config())
	if err != nil {
		return err
	}
	r.asc = asc
	r.ascSpec = spec
	up := c.UpCount()
	r.peakFleet, r.minFleet = up, up
	interval := asc.Config().Interval
	var tick func()
	tick = func() {
		r.autoscaleTick()
		r.st.Eng.After(interval, tick)
	}
	r.st.Eng.After(interval, tick)
	return nil
}

// autoscaleTick is one controller observation, run inside an engine
// callback: read the fleet signal, apply the decision, track extremes.
func (r *run) autoscaleTick() {
	if r.ascErr != nil {
		return
	}
	c := r.st.Cluster
	up := c.UpCount()
	sig := 0.0
	if up > 0 {
		sig = float64(c.Inside()+c.QueueLen()) / float64(up)
	}
	switch r.asc.Observe(r.st.Eng.Now(), up, sig) {
	case autoscale.ScaleUp:
		r.ascErr = r.scaleUp()
	case autoscale.ScaleDown:
		r.ascErr = r.scaleDown()
	}
	if r.ascErr != nil {
		// Surface the failure at the next breakpoint instead of ticking
		// a broken fleet to the phase end.
		r.st.Eng.Stop()
		return
	}
	if up := c.UpCount(); up > r.peakFleet {
		r.peakFleet = up
	} else if up < r.minFleet {
		r.minFleet = up
	}
}

// scaleUp adds one serving shard: reuse a parked (Draining or Down)
// slot first — recovering one is instant capacity and keeps the slot
// count bounded over long oscillations — and only build a fresh shard
// through the factory when every slot is Up.
func (r *run) scaleUp() error {
	c := r.st.Cluster
	n := c.NumShards()
	for i := 0; i < n; i++ {
		if c.State(i) != cluster.ShardUp {
			if err := c.RecoverShard(i); err != nil {
				return err
			}
			return r.retargetMPL()
		}
	}
	if r.st.NewShard == nil {
		// Every built slot is serving and there is nothing to grow
		// with; armAutoscale only allows this when Max <= built shards,
		// so the controller is simply clamped here.
		return nil
	}
	sh, err := r.st.NewShard(n)
	if err != nil {
		return err
	}
	if _, err := c.AddShard(sh); err != nil {
		return err
	}
	return r.retargetMPL()
}

// scaleDown drains the highest-index Up shard (the slot a later
// scale-up is least likely to reuse first, keeping low indexes warm).
func (r *run) scaleDown() error {
	c := r.st.Cluster
	for i := c.NumShards() - 1; i >= 0; i-- {
		if c.State(i) == cluster.ShardUp {
			if err := c.RemoveShard(i); err != nil {
				return err
			}
			return r.retargetMPL()
		}
	}
	return nil
}

// retargetMPL re-splits the cluster MPL after a fleet change when the
// spec scales admitted concurrency with capacity.
func (r *run) retargetMPL() error {
	if r.ascSpec.MPLPerShard <= 0 {
		return nil
	}
	r.st.Cluster.SetMPL(r.ascSpec.MPLPerShard * r.st.Cluster.UpCount())
	return nil
}

// autoscaleReport assembles the run's fleet trajectory summary.
func (r *run) autoscaleReport() *AutoscaleReport {
	rep := &AutoscaleReport{
		ScaleUps:   r.asc.ScaleUps(),
		ScaleDowns: r.asc.ScaleDowns(),
		FinalFleet: r.st.Cluster.UpCount(),
		PeakFleet:  r.peakFleet,
		MinFleet:   r.minFleet,
	}
	to := takeMark(r.st)
	for i, t := range to.shards {
		var f shardMark
		if i < len(r.totalMark.shards) {
			f = r.totalMark.shards[i]
		}
		rep.ShardSeconds += t.upSec - f.upSec
	}
	return rep
}

// sloReport snapshots the attached SLO loop's state.
func (r *run) sloReport() *SLOReport {
	slo, other := r.slo.Limits()
	rep := &SLOReport{
		Class:      r.sloSpec.Class,
		SLOLimit:   slo,
		OtherLimit: other,
		Iterations: r.slo.Iterations(),
	}
	if h := r.slo.History(); len(h) > 0 {
		rep.LastMeasured = h[len(h)-1].Measured
	}
	return rep
}

// attachSLO builds and wires the latency-SLO controller. The stack
// must be unsharded (the partition and the per-class percentile signal
// live on the lone frontend), and the frontend gets percentile
// sampling enabled on the spot if the configuration did not already.
func (r *run) attachSLO(spec SLOSpec) error {
	if r.st.Cluster != nil {
		return fmt.Errorf("runner: SLO control on a sharded system is not supported")
	}
	if r.ctl != nil {
		return fmt.Errorf("runner: the SLO loop and the throughput controller share the metrics window; disable the controller first")
	}
	if r.fair != nil {
		return fmt.Errorf("runner: the SLO loop and the fairness controller share the metrics window; disable fairness first")
	}
	fe := r.st.FE.Frontend
	if !fe.PercentilesEnabled() {
		seed := r.st.Seed
		if seed == 0 {
			seed = 1
		}
		fe.EnablePercentiles(sloSampleCapacity, seed)
	}
	slo, err := controller.NewSLO(r.st.Eng.Clock(), fe, controller.SLOConfig{
		Target: controller.SLOTarget{
			Class:      spec.Class,
			Percentile: spec.Percentile,
			Target:     spec.Target,
		},
		MinObservations: spec.MinObservations,
		Margin:          spec.Margin,
	})
	if err != nil {
		return err
	}
	r.slo = slo
	r.sloSpec = spec
	return nil
}

// sloSampleCapacity is the reservoir size attachSLO enables when the
// stack has no percentile sampling of its own: large enough for a
// stable p95 over a 50-completion window, small enough to be free.
const sloSampleCapacity = 2048

// attachFairness builds and wires the N-tenant max-min fairness
// controller. The stack must be unsharded (the class partition lives on
// the lone frontend), and the loop is mutually exclusive with the SLO
// loop and the throughput controller: all three reset the frontend's
// metrics window per reaction.
func (r *run) attachFairness(spec FairnessSpec) error {
	if r.st.Cluster != nil {
		return fmt.Errorf("runner: fairness control on a sharded system is not supported")
	}
	if r.slo != nil {
		return fmt.Errorf("runner: the fairness controller and the SLO loop share the metrics window; disable the SLO loop first")
	}
	if r.ctl != nil {
		return fmt.Errorf("runner: the fairness controller and the throughput controller share the metrics window; disable the controller first")
	}
	fair, err := fairness.New(r.st.FE.Frontend, fairness.Config{
		Weights:         spec.Weights,
		MinObservations: spec.MinObservations,
		Hysteresis:      spec.Hysteresis,
		Strict:          spec.Strict,
	})
	if err != nil {
		return err
	}
	r.fair = fair
	return nil
}

// fairReport snapshots the attached fairness loop's state.
func (r *run) fairReport() *FairnessReport {
	return &FairnessReport{
		Limits:     r.fair.Limits(),
		Iterations: r.fair.Iterations(),
		Moves:      r.fair.Moves(),
	}
}

// beginMeasurement opens the measurement window at the engine's
// current time.
func (r *run) beginMeasurement() {
	if c := r.st.Cluster; c != nil {
		c.ResetMetrics()
		for _, sh := range c.Shards() {
			if sh.DB != nil {
				sh.DB.Pool().ResetStats()
			}
		}
	} else {
		r.st.FE.ResetMetrics()
		if r.st.DB != nil {
			r.st.DB.Pool().ResetStats()
		}
	}
	r.measuring = true
	m := takeMark(r.st)
	r.totalMark, r.phaseMark, r.winMark = m, m, m
	r.nextSnap = m.t + r.spec.SampleInterval
}

// churnEvents precomputes one phase's failure schedule: per shard, an
// alternating sequence of exponential up/down sojourns truncated at
// the phase end, emitted as guarded fail/recover events. The schedule
// is a pure function of (spec, shard count, duration, seed), so churn
// phases rerun bit-identically.
func churnEvents(ch ChurnSpec, shards int, dur float64, stackSeed uint64) []Event {
	seed := ch.Seed
	if seed == 0 {
		seed = stackSeed
		if seed == 0 {
			seed = 1
		}
	}
	var out []Event
	for i := 0; i < shards; i++ {
		rng := sim.NewRNG(seed, uint64(211+i))
		exp := func(mean float64) float64 {
			return -mean * math.Log(1-rng.Float64())
		}
		t := exp(ch.MTBF)
		for t < dur {
			idx := i
			out = append(out, Event{At: t, ShardFail: &idx, churn: true})
			t += exp(ch.MTTR)
			if t >= dur {
				// Never leave a churned shard down past its phase: the
				// generator owns only this phase's window.
				t = dur
			}
			out = append(out, Event{At: t, ShardRecover: &idx, churn: true})
			t += exp(ch.MTBF)
		}
	}
	return out
}

// advance drives the stack's engine(s) to the inclusive bound t: the
// conservative parallel ensemble when the stack has one, the lone
// engine otherwise. Either way, when it returns every clock stands at
// t and all cross-engine messages up to t have been delivered, so
// breakpoint work (events, snapshots) observes one consistent instant.
func (r *run) advance(t float64) {
	if r.st.Par != nil {
		r.st.Par.Run(t)
		return
	}
	r.st.Eng.Run(t)
}

// runPhase advances the engine through one phase's measured duration,
// pausing at event and snapshot breakpoints. It reports whether the
// run should stop early (controller convergence).
func (r *run) runPhase(ctx context.Context, ph Phase) (stopEarly bool, err error) {
	eng := r.st.Eng
	phaseStart := eng.Now()
	phaseEnd := phaseStart + ph.Duration
	// Events fire in offset order, clamped into the phase.
	evs := append([]Event(nil), ph.Events...)
	if ph.Churn != nil {
		if r.st.Cluster == nil {
			return false, fmt.Errorf("runner: churn phase on an unsharded system")
		}
		evs = append(evs, churnEvents(*ph.Churn, r.st.Cluster.NumShards(), ph.Duration, r.st.Seed)...)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	ei := 0
	for {
		t := phaseEnd
		if ei < len(evs) {
			if et := min(phaseStart+evs[ei].At, phaseEnd); et < t {
				t = et
			}
		}
		if r.spec.SampleInterval > 0 && r.nextSnap < t {
			t = r.nextSnap
		}
		r.advance(t)
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if r.ascErr != nil {
			return false, r.ascErr
		}
		// Apply everything due at this breakpoint: events first (a
		// snapshot at the same instant observes their effect).
		for ei < len(evs) && min(phaseStart+evs[ei].At, phaseEnd) <= t {
			if err := r.applyEvent(evs[ei]); err != nil {
				return false, err
			}
			ei++
		}
		if r.spec.SampleInterval > 0 && r.nextSnap <= t {
			r.emitSnapshot(ph)
			r.nextSnap += r.spec.SampleInterval
		}
		if r.stopOnConverge && r.ctl != nil && r.ctl.Converged() {
			return true, nil
		}
		if t >= phaseEnd {
			return false, nil
		}
	}
}

// setWFQWeights reaches the queue policy on either stack shape.
func (r *run) setWFQWeights(w map[core.Class]float64) {
	if c := r.st.Cluster; c != nil {
		c.SetWFQWeights(w)
		return
	}
	r.st.FE.SetWFQWeights(w)
}

// applyEvent performs one control action at the engine's current time.
func (r *run) applyEvent(ev Event) error {
	gate := r.st.Gate()
	if ev.SetMPL != nil {
		gate.SetMPL(*ev.SetMPL)
	}
	if ev.SetWFQHighWeight != nil {
		r.setWFQWeights(map[core.Class]float64{core.ClassHigh: *ev.SetWFQHighWeight, core.ClassLow: 1})
	}
	if len(ev.SetWeights) > 0 {
		r.setWFQWeights(ev.SetWeights)
	}
	if ev.SetTenantLimits != nil {
		if r.st.Cluster != nil {
			return fmt.Errorf("runner: SetTenantLimits event on a sharded system")
		}
		if len(ev.SetTenantLimits) == 0 {
			r.st.FE.SetClassLimits(nil)
		} else {
			limits := make(map[core.Class]int, len(ev.SetTenantLimits))
			for c, l := range ev.SetTenantLimits {
				limits[c] = l
			}
			r.st.FE.SetClassLimits(limits)
		}
	}
	if ev.SetTenantDeadlines != nil {
		for c, d := range ev.SetTenantDeadlines {
			if cl := r.st.Cluster; cl != nil {
				cl.SetAdmitDeadline(c, d)
			} else {
				r.st.FE.SetAdmitDeadline(c, d)
			}
		}
	}
	if ss := ev.SetShardSpeed; ss != nil {
		if r.st.Cluster == nil {
			return fmt.Errorf("runner: SetShardSpeed event on an unsharded system")
		}
		if err := r.st.Cluster.SetSpeed(ss.Shard, ss.Speed); err != nil {
			return err
		}
	}
	if ev.SetDispatch != "" {
		if r.st.Cluster == nil {
			return fmt.Errorf("runner: SetDispatch event on an unsharded system")
		}
		// Seed the policy from the stack so sampled dispatch (jsq-d,
		// lwl-d) reruns bit-identically.
		p, err := cluster.NewPolicySeeded(ev.SetDispatch, r.st.Seed)
		if err != nil {
			return err
		}
		r.st.Cluster.SetPolicy(p)
	}
	if ev.ShardAdd {
		if r.st.Cluster == nil {
			return fmt.Errorf("runner: ShardAdd event on an unsharded system")
		}
		if r.st.NewShard == nil {
			return fmt.Errorf("runner: ShardAdd event needs a Stack.NewShard factory")
		}
		sh, err := r.st.NewShard(r.st.Cluster.NumShards())
		if err != nil {
			return err
		}
		if _, err := r.st.Cluster.AddShard(sh); err != nil {
			return err
		}
	}
	if ev.ShardFail != nil {
		c := r.st.Cluster
		if c == nil {
			return fmt.Errorf("runner: ShardFail event on an unsharded system")
		}
		skip := false
		if ev.churn {
			// Generator-synthesized failures never take the last Up
			// shard down; an explicit scenario event may.
			up := 0
			for _, s := range c.States() {
				if s == cluster.ShardUp {
					up++
				}
			}
			skip = up <= 1 && c.State(*ev.ShardFail) == cluster.ShardUp
		}
		if !skip {
			if err := c.FailShard(*ev.ShardFail); err != nil {
				return err
			}
		}
	}
	if ev.ShardRecover != nil {
		if r.st.Cluster == nil {
			return fmt.Errorf("runner: ShardRecover event on an unsharded system")
		}
		if err := r.st.Cluster.RecoverShard(*ev.ShardRecover); err != nil {
			return err
		}
	}
	if ev.ShardRemove != nil {
		if r.st.Cluster == nil {
			return fmt.Errorf("runner: ShardRemove event on an unsharded system")
		}
		if err := r.st.Cluster.RemoveShard(*ev.ShardRemove); err != nil {
			return err
		}
	}
	if ad := ev.SetAdmitDeadline; ad != nil {
		if c := r.st.Cluster; c != nil {
			c.SetAdmitDeadline(core.ClassHigh, ad.High)
			c.SetAdmitDeadline(core.ClassLow, ad.Low)
		} else {
			r.st.FE.SetAdmitDeadline(core.ClassHigh, ad.High)
			r.st.FE.SetAdmitDeadline(core.ClassLow, ad.Low)
		}
	}
	if cl := ev.SetClassLimits; cl != nil {
		if r.st.Cluster != nil {
			return fmt.Errorf("runner: SetClassLimits event on a sharded system")
		}
		if cl.High == 0 && cl.Low == 0 {
			r.st.FE.SetClassLimits(nil)
		} else {
			r.st.FE.SetClassLimits(map[core.Class]int{
				core.ClassHigh: cl.High,
				core.ClassLow:  cl.Low,
			})
		}
	}
	// Both disables run before either enable, so one event can hand
	// control from one loop to the other ({disable_controller,
	// set_slo} and {disable_slo, enable_controller} both work).
	if ev.DisableSLO {
		if r.slo != nil {
			r.sloFinal = r.sloReport()
			r.slo = nil
		}
	}
	if ev.DisableFairness {
		if r.fair != nil {
			r.fairFinal = r.fairReport()
			r.fair = nil
			// The partition stays where the loop left it, but a strict
			// cap relaxes: without a controller rebalancing it, a hard
			// cap could idle capacity forever.
			r.st.FE.SetStrictPartition(false)
		}
	}
	if ev.DisableController {
		// Record the detached loop's outcome before dropping it, so the
		// run's TuneReport survives the disable.
		if r.ctl != nil && r.tune != nil {
			r.tune.FinalMPL = gate.MPL()
			r.tune.Iterations = r.ctl.Iterations()
			r.tune.Converged = r.ctl.Converged()
		}
		r.ctl = nil
		r.stopOnConverge = false
	}
	if ev.SetSLO != nil {
		if err := r.attachSLO(*ev.SetSLO); err != nil {
			return err
		}
	}
	if ev.EnableFairness != nil {
		if err := r.attachFairness(*ev.EnableFairness); err != nil {
			return err
		}
	}
	if cs := ev.EnableController; cs != nil {
		if r.slo != nil {
			return fmt.Errorf("runner: the throughput controller and the SLO loop share the metrics window; disable the SLO loop first")
		}
		if r.fair != nil {
			return fmt.Errorf("runner: the throughput controller and the fairness controller share the metrics window; disable fairness first")
		}
		ctl, err := controller.New(r.st.Eng.Clock(), gate, controller.Config{
			Targets: controller.Targets{
				MaxThroughputLoss: cs.MaxThroughputLoss,
				MaxRTIncrease:     cs.MaxRTIncrease,
			},
			Reference: controller.Reference{
				MaxThroughput: cs.ReferenceThroughput,
				OptimalRT:     cs.ReferenceRT,
			},
			MinObservations: cs.MinObservations,
			HoldWindows:     cs.HoldWindows,
		})
		if err != nil {
			return err
		}
		r.ctl = ctl
		r.stopOnConverge = cs.StopOnConverge
		if r.tune == nil {
			r.tune = &TuneReport{StartMPL: gate.MPL()}
		}
	}
	return nil
}

// shardReports assembles each shard's slice of the whole measurement
// window (nil for single-backend stacks).
func (r *run) shardReports() []ShardReport {
	c := r.st.Cluster
	if c == nil {
		return nil
	}
	to := takeMark(r.st)
	from := r.totalMark
	out := make([]ShardReport, c.NumShards())
	for i, sh := range c.Shards() {
		sr := ShardReport{Shard: i, Speed: sh.Speed, State: c.State(i).String()}
		sr.Report = Report{Window: to.t - from.t}
		if i < len(r.shardTotal) {
			a := &r.shardTotal[i]
			sr.Completed = a.completed
			sr.All = a.all
			sr.High = a.high
			sr.Low = a.low
			sr.Inside = a.inside
			sr.ExtWait = a.extwait
			sr.Restarts = a.restarts
		}
		if i < len(r.shardP95) && r.shardP95[i].Count() > 0 {
			sr.P95 = r.shardP95[i].Quantile()
		}
		// A shard added mid-run is missing from the opening mark; its
		// cumulative counters started at zero when it joined, so the
		// whole-window delta is just the closing value.
		var f shardMark
		if i < len(from.shards) {
			f = from.shards[i]
		}
		if i < len(to.shards) {
			t := to.shards[i]
			sr.Dispatched = t.routed - f.routed
			sr.Dropped = t.dropped - f.dropped
			sr.LockWaits = t.waits - f.waits
			sr.Deadlocks = t.dl - f.dl
			sr.Preemptions = t.preempt - f.preempt
			sr.CPUUtil = utilDelta(f.cpuBusy, t.cpuBusy, from.t, to.t)
			sr.DiskUtil = utilDelta(f.diskBusy, t.diskBusy, from.t, to.t)
			if w := to.t - from.t; w > 0 {
				sr.Availability = (t.upSec - f.upSec) / w
			}
		}
		out[i] = sr
	}
	return out
}

// maxSnapshotShards bounds the per-member slice an interval snapshot
// carries: above this fleet size a collector holding the run's time
// series would grow O(N) per interval, so snapshots keep only the
// aggregate (and fleet-size) fields. Whole-run per-shard reports in
// the Outcome are unaffected — they are emitted once, not per tick.
const maxSnapshotShards = 128

// shardStats assembles the per-shard slice of an interval snapshot and
// opens the shards' next completion window.
func (r *run) shardStats(to mark) []metrics.ShardStat {
	c := r.st.Cluster
	if c == nil {
		return nil
	}
	if c.NumShards() > maxSnapshotShards {
		// Elide the slice but still close the shards' completion
		// window, or the first small-fleet snapshot after a shrink
		// would double-count.
		for i := range r.winShard {
			r.winShard[i] = 0
		}
		return nil
	}
	out := make([]metrics.ShardStat, c.NumShards())
	for i, sh := range c.Shards() {
		ss := metrics.ShardStat{
			Shard:    i,
			Speed:    sh.Speed,
			Limit:    sh.FE.MPL(),
			Inflight: sh.FE.Inside(),
			Queued:   sh.FE.QueueLen(),
			State:    c.State(i).String(),
		}
		if i < len(r.winShard) {
			ss.Completed = r.winShard[i]
			r.winShard[i] = 0
		}
		// As in shardReports, a shard added mid-window is simply absent
		// from the opening mark: its counters delta from zero.
		var f shardMark
		if i < len(r.winMark.shards) {
			f = r.winMark.shards[i]
		}
		if i < len(to.shards) {
			t := to.shards[i]
			ss.Dispatched = t.routed - f.routed
			ss.CPUUtil = utilDelta(f.cpuBusy, t.cpuBusy, r.winMark.t, to.t)
			ss.DiskUtil = utilDelta(f.diskBusy, t.diskBusy, r.winMark.t, to.t)
			if w := to.t - r.winMark.t; w > 0 {
				ss.Availability = (t.upSec - f.upSec) / w
			}
		}
		out[i] = ss
	}
	return out
}

// maxSnapshotClasses bounds the per-class slice an interval snapshot
// carries, like maxSnapshotShards does for shards: above this tenant
// count a collector holding the run's time series would grow O(N) per
// interval, so snapshots keep only the aggregate fields. Whole-run
// per-class reports in the Outcome are unaffected — they are emitted
// once, not per tick.
const maxSnapshotClasses = 64

// classStats assembles the per-class slice of an interval snapshot:
// every class that completed or shed work this window, ascending.
func (r *run) classStats(to mark) []metrics.ClassStat {
	w := &r.window
	ids := make(map[core.Class]struct{}, len(w.classes))
	for c, ca := range w.classes {
		if ca.Count() > 0 {
			ids[c] = struct{}{}
		}
	}
	for c, n := range to.shedClass {
		if n > r.winMark.shedClass[c] {
			ids[c] = struct{}{}
		}
	}
	if len(ids) == 0 || len(ids) > maxSnapshotClasses {
		return nil
	}
	classes := make([]core.Class, 0, len(ids))
	for c := range ids {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	out := make([]metrics.ClassStat, len(classes))
	for i, c := range classes {
		cs := metrics.ClassStat{
			Class: int(c),
			Name:  className(r.st, c),
			Shed:  to.shedClass[c] - r.winMark.shedClass[c],
		}
		if ca := w.classes[c]; ca != nil {
			cs.Completed = uint64(ca.Count())
			cs.Mean = ca.Mean()
		}
		if rv := r.resClass[c]; rv != nil {
			cs.P95 = rv.Percentile(95)
		}
		out[i] = cs
	}
	return out
}

// emitSnapshot sends the current interval window to every observer and
// opens the next one.
func (r *run) emitSnapshot(ph Phase) {
	st := r.st
	gate := st.Gate()
	to := takeMark(st)
	w := r.window
	s := metrics.Snapshot{
		Time:         to.t,
		Window:       to.t - r.winMark.t,
		Phase:        ph.label(),
		Limit:        gate.MPL(),
		Inflight:     gate.Inside(),
		Queued:       gate.QueueLen(),
		Completed:    w.completed,
		MeanResponse: w.all.Mean(),
		MeanWait:     w.extwait.Mean(),
		MeanInside:   w.inside.Mean(),
		Restarts:     w.restarts,
		Dropped:      to.dropped - r.winMark.dropped,
		Canceled:     to.canceled - r.winMark.canceled,
		Shed:         to.shed - r.winMark.shed,
		Failed:       to.failed - r.winMark.failed,
		Resubmitted:  to.resub - r.winMark.resub,
		Retries:      to.retries - r.winMark.retries,
		CPUUtil:      utilDelta(r.winMark.cpuBusy, to.cpuBusy, r.winMark.t, to.t),
		DiskUtil:     utilDelta(r.winMark.diskBusy, to.diskBusy, r.winMark.t, to.t),
	}
	if s.Window > 0 {
		s.Throughput = float64(s.Completed) / s.Window
	}
	if r.res != nil {
		s.P50 = r.res.Percentile(50)
		s.P95 = r.res.Percentile(95)
		s.P99 = r.res.Percentile(99)
	}
	s.Classes = r.classStats(to)
	if c := st.Cluster; c != nil {
		s.FleetSize = c.NumShards()
		s.FleetUp = c.UpCount()
	}
	if r.asc != nil {
		ups, downs := r.asc.ScaleUps(), r.asc.ScaleDowns()
		s.ScaleUps = ups - r.snapUps
		s.ScaleDowns = downs - r.snapDowns
		r.snapUps, r.snapDowns = ups, downs
	}
	s.Shards = r.shardStats(to)
	for _, o := range r.obs {
		o.OnInterval(s)
	}
	r.window.reset()
	r.winMark = to
}
